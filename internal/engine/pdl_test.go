package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ipa/internal/core"
	"ipa/internal/flash"
	"ipa/internal/noftl"
)

// newPDLRig builds a DB whose "main" region runs the PDL storage scheme
// (no IPA layout: PDL regions write raw page images and append
// differentials to dedicated log blocks).
func newPDLRig(t *testing.T, frames int) *testRig {
	t.Helper()
	g := flash.Geometry{
		Chips: 2, BlocksPerChip: 32, PagesPerBlock: 8,
		PageSize: 512, OOBSize: 32, Cell: flash.SLC,
	}
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dev := noftl.Open(arr)
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "main", Storage: noftl.StoragePDL, BlocksPerChip: 32, OverProvision: 0.2,
	}); err != nil {
		t.Fatal(err)
	}
	db, err := New(dev, Options{
		PageSize: 512, BufferFrames: frames, DirtyThreshold: 2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{dev: dev, db: db}
}

// TestPDLEngineRoundTrip drives the full flush path through the PDL
// scheme: small updates become differential appends, reads merge them
// back, and the values survive eviction.
func TestPDLEngineRoundTrip(t *testing.T) {
	// 4 frames against a multi-page table: reads must fetch (and merge)
	// from flash rather than hitting resident frames.
	r := newPDLRig(t, 4)
	tbl, err := r.db.CreateTable("t", "main")
	if err != nil {
		t.Fatal(err)
	}
	sch, _ := NewSchema(8, 120)
	tx := mustBegin(r.db, nil)
	var rids []core.RID
	for i := 0; i < 20; i++ {
		tup := sch.New()
		sch.SetUint(tup, 0, uint64(i))
		rid, err := tbl.Insert(tx, tup)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r.db.FlushAll(nil)

	want := map[core.RID]uint64{}
	for round := 0; round < 10; round++ {
		tx := mustBegin(r.db, nil)
		for i, rid := range rids {
			cur, err := tbl.Read(nil, rid)
			if err != nil {
				t.Fatal(err)
			}
			v := uint64(round*100 + i)
			sch.SetUint(cur, 1, v)
			if err := tbl.Update(tx, rid, cur); err != nil {
				t.Fatal(err)
			}
			want[rid] = v
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		r.db.FlushAll(nil)
	}
	st := r.db.Store("main").Stats()
	if st.Scheme.Storage != noftl.StoragePDL {
		t.Fatalf("scheme = %v", st.Scheme.Storage)
	}
	if st.Scheme.PDL.Appends == 0 {
		t.Error("no PDL appends recorded")
	}
	for rid, v := range want {
		got, err := tbl.Read(nil, rid)
		if err != nil {
			t.Fatal(err)
		}
		if g := sch.GetUint(got, 1); g != v {
			t.Errorf("row %v = %d, want %d", rid, g, v)
		}
	}
	if r.db.Store("main").Stats().Scheme.PDL.Applies == 0 {
		t.Error("no PDL record applications on read")
	}
}

// TestPDLRecoverMapping restarts the device from its flash image alone:
// the physical scan must skip PDL log blocks, the DiffLog must rebuild
// its in-memory index from the on-flash records, and merged reads must
// return the last flushed values.
func TestPDLRecoverMapping(t *testing.T) {
	r := newPDLRig(t, 8)
	tbl, err := r.db.CreateTable("t", "main")
	if err != nil {
		t.Fatal(err)
	}
	sch, _ := NewSchema(8, 8)
	tx := mustBegin(r.db, nil)
	var rids []core.RID
	for i := 0; i < 12; i++ {
		tup := sch.New()
		sch.SetUint(tup, 0, uint64(i))
		rid, err := tbl.Insert(tx, tup)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	tx.Commit()
	r.db.FlushAll(nil)
	want := map[core.RID]uint64{}
	for round := 0; round < 4; round++ {
		tx := mustBegin(r.db, nil)
		for i, rid := range rids {
			cur, err := tbl.Read(nil, rid)
			if err != nil {
				t.Fatal(err)
			}
			v := uint64(1000*round + i)
			sch.SetUint(cur, 1, v)
			if err := tbl.Update(tx, rid, cur); err != nil {
				t.Fatal(err)
			}
			want[rid] = v
		}
		tx.Commit()
		r.db.FlushAll(nil)
	}
	if r.db.Store("main").Stats().Scheme.PDL.Appends == 0 {
		t.Fatal("setup produced no PDL appends")
	}

	// Restart: drop the buffer pool and all in-memory mapping state.
	if err := r.db.SimulateCrash(); err != nil {
		t.Fatal(err)
	}
	n, err := r.db.Store("main").RecoverMapping(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("RecoverMapping adopted no pages")
	}
	if _, err := r.db.Recover(nil); err != nil {
		t.Fatal(err)
	}
	for rid, v := range want {
		got, err := tbl.Read(nil, rid)
		if err != nil {
			t.Fatalf("read %v: %v", rid, err)
		}
		if g := sch.GetUint(got, 1); g != v {
			t.Errorf("row %v = %d, want %d", rid, g, v)
		}
	}
}

// TestPDLCrashConsistencyFuzz is the crash-recovery fuzz of
// TestCrashConsistencyFuzz run over a PDL region, with the mapping (and
// the differential log) rebuilt from flash between crash and redo each
// round: merge replay must lose no acked commit.
func TestPDLCrashConsistencyFuzz(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runPDLCrashFuzz(t, seed)
		})
	}
}

func runPDLCrashFuzz(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	r := newPDLRig(t, 24)
	tbl, err := r.db.CreateTable("t", "main")
	if err != nil {
		t.Fatal(err)
	}
	sch, _ := NewSchema(8, 8)

	committed := map[core.RID]uint64{}
	tx := mustBegin(r.db, nil)
	var rids []core.RID
	for i := 0; i < 30; i++ {
		tup := sch.New()
		sch.SetUint(tup, 0, uint64(i))
		rid, err := tbl.Insert(tx, tup)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		committed[rid] = 0
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r.db.FlushAll(nil)

	for round := 0; round < 6; round++ {
		for i := 0; i < 10; i++ {
			tx := mustBegin(r.db, nil)
			mods := map[core.RID]uint64{}
			nOps := 1 + rng.Intn(4)
			conflicted := false
			for j := 0; j < nOps; j++ {
				rid := rids[rng.Intn(len(rids))]
				cur, err := tbl.Read(nil, rid)
				if err != nil {
					t.Fatal(err)
				}
				nv := rng.Uint64() % 1_000_000
				sch.SetUint(cur, 1, nv)
				if err := tbl.Update(tx, rid, cur); err != nil {
					if errors.Is(err, ErrLockConflict) {
						conflicted = true
						break
					}
					t.Fatal(err)
				}
				mods[rid] = nv
			}
			if conflicted {
				if err := tx.Abort(); err != nil {
					t.Fatal(err)
				}
				continue
			}
			switch rng.Intn(4) {
			case 0: // loser: left open across the crash
			case 1:
				if err := tx.Abort(); err != nil {
					t.Fatal(err)
				}
			default:
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
				for rid, v := range mods {
					committed[rid] = v
				}
			}
		}
		// Steal a random subset of dirty pages (PDL appends and
		// out-of-place fallbacks) before the crash.
		if rng.Intn(2) == 0 {
			if _, err := r.db.Pool().FlushOldest(nil, rng.Intn(16)); err != nil {
				t.Fatal(err)
			}
		}
		// CRASH, rebuild the mapping + differential log from flash, redo.
		if err := r.db.SimulateCrash(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.db.Store("main").RecoverMapping(nil); err != nil {
			t.Fatal(err)
		}
		if _, err := r.db.Recover(nil); err != nil {
			t.Fatal(err)
		}
		for _, rid := range rids {
			got, err := tbl.Read(nil, rid)
			if err != nil {
				t.Fatalf("round %d: read %v: %v", round, rid, err)
			}
			if v := sch.GetUint(got, 1); v != committed[rid] {
				t.Fatalf("round %d: row %v = %d, want %d", round, rid, v, committed[rid])
			}
		}
	}
}
