package engine

import (
	"testing"

	"ipa/internal/core"
	"ipa/internal/flash"
	"ipa/internal/noftl"
)

// TestScrubRepairsRetentionErrors drives the full Correct-and-Refresh
// path: charge leaks in the stored page are detected via the sectioned
// ECC and repaired in place by an ISPP re-program.
func TestScrubRepairsRetentionErrors(t *testing.T) {
	g := flash.Geometry{
		Chips: 1, BlocksPerChip: 32, PagesPerBlock: 8,
		PageSize: 512, OOBSize: 32, Cell: flash.SLC,
	}
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8, Seed: 5,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dev := noftl.Open(arr)
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "main", Mode: noftl.ModeSLC, Scheme: core.NewScheme(2, 3), BlocksPerChip: 32,
	}); err != nil {
		t.Fatal(err)
	}
	db, err := New(dev, Options{PageSize: 512, BufferFrames: 8, UseECC: true, DirtyThreshold: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", "main")
	sch, _ := NewSchema(8, 8)
	tx := mustBegin(db, nil)
	tup := sch.New()
	sch.SetUint(tup, 0, 0xAABBCCDD)
	rid, err := tbl.Insert(tx, tup)
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	db.FlushAll(nil)
	db.Pool().Drop(rid.Page)

	// Leak one bit of stored charge on the physical page.
	st := db.Store("main")
	ppn, ok := st.Region().PPNOf(rid.Page)
	if !ok {
		t.Fatal("page unmapped")
	}
	if n, err := arr.InjectLeak(ppn, 1); err != nil || n != 1 {
		t.Fatalf("InjectLeak = (%d, %v)", n, err)
	}

	// Scrub detects and repairs it in place (no relocation, no erase).
	erasesBefore := arr.Stats().Erases
	corrected, err := st.Scrub(nil, rid.Page)
	if err != nil {
		t.Fatal(err)
	}
	if corrected != 1 {
		t.Errorf("corrected = %d, want 1", corrected)
	}
	if p2, _ := st.Region().PPNOf(rid.Page); p2 != ppn {
		t.Error("scrub relocated the page")
	}
	if arr.Stats().Erases != erasesBefore {
		t.Error("scrub caused an erase")
	}
	if arr.Stats().Refreshes != 1 {
		t.Errorf("Refreshes = %d", arr.Stats().Refreshes)
	}
	// A second scrub finds a clean page and skips the re-program.
	corrected, err = st.Scrub(nil, rid.Page)
	if err != nil || corrected != 0 {
		t.Errorf("second scrub = (%d, %v)", corrected, err)
	}
	if arr.Stats().Refreshes != 1 {
		t.Error("clean scrub still re-programmed")
	}
	// And the data is intact end to end.
	got, err := tbl.Read(nil, rid)
	if err != nil {
		t.Fatal(err)
	}
	if sch.GetUint(got, 0) != 0xAABBCCDD {
		t.Errorf("value = %#x", sch.GetUint(got, 0))
	}
}

// TestScrubRequiresECC guards the precondition.
func TestScrubRequiresECC(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 8, false)
	tbl, _ := r.db.CreateTable("t", "main")
	tx := mustBegin(r.db, nil)
	rid, _ := tbl.Insert(tx, make([]byte, 16))
	tx.Commit()
	r.db.FlushAll(nil)
	if _, err := r.db.Store("main").Scrub(nil, rid.Page); err == nil {
		t.Error("scrub without ECC accepted")
	}
}
