package engine

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"ipa/internal/core"
)

// TestIndexConcurrentStress hammers each index implementation from 8
// goroutines with a mixed insert/update/delete/lookup/scan workload.
// Every worker owns a disjoint keyspace (keys prefixed with its id) and
// keeps a private shadow map, so mid-run lookups and scans over its own
// range have exact expected answers even while other workers mutate
// neighbouring leaves. After the run a global scan audits ordering and
// the combined population. Run under -race this doubles as the latching
// protocol's data-race check.
func TestIndexConcurrentStress(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind IndexKind) {
		_, ix := newIndexRigKind(t, 128, kind)

		const workers = 8
		opsPer := 800
		if testing.Short() {
			opsPer = 200
		}

		var wg sync.WaitGroup
		totals := make([]map[uint64]core.PageID, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000 + w)))
				shadow := map[uint64]core.PageID{}
				base := uint64(w+1) << 32 // disjoint keyspace per worker
				hi := base | 0xFFFFFFFF
				for op := 0; op < opsPer; op++ {
					k := base | uint64(rng.Intn(400)+1)
					switch rng.Intn(10) {
					case 0, 1, 2, 3: // insert
						if _, dup := shadow[k]; dup {
							continue
						}
						p := core.PageID(rng.Intn(1_000_000) + 1)
						if err := ix.Insert(nil, k, core.RID{Page: p}); err != nil {
							t.Errorf("worker %d insert %#x: %v", w, k, err)
							return
						}
						shadow[k] = p
					case 4, 5: // delete
						deleted, err := ix.Delete(nil, k)
						if err != nil {
							t.Errorf("worker %d delete %#x: %v", w, k, err)
							return
						}
						if _, had := shadow[k]; deleted != had {
							t.Errorf("worker %d delete %#x = %v, shadow had %v", w, k, deleted, !deleted)
							return
						}
						delete(shadow, k)
					case 6: // update a key we own
						if _, ok := shadow[k]; !ok {
							continue
						}
						p := core.PageID(rng.Intn(1_000_000) + 1)
						if err := ix.Update(nil, k, core.RID{Page: p}); err != nil {
							t.Errorf("worker %d update %#x: %v", w, k, err)
							return
						}
						shadow[k] = p
					case 7: // scan own range, audit against shadow
						seen := map[uint64]core.PageID{}
						prev := uint64(0)
						err := ix.Range(nil, base, hi, func(key uint64, rid core.RID) bool {
							if key <= prev {
								t.Errorf("worker %d scan out of order: %#x after %#x", w, key, prev)
								return false
							}
							prev = key
							seen[key] = rid.Page
							return true
						})
						if err != nil {
							t.Errorf("worker %d scan: %v", w, err)
							return
						}
						if len(seen) != len(shadow) {
							t.Errorf("worker %d scan saw %d keys, shadow has %d", w, len(seen), len(shadow))
							return
						}
						for key, p := range shadow {
							if seen[key] != p {
								t.Errorf("worker %d scan key %#x = %d, want %d", w, key, seen[key], p)
								return
							}
						}
					default: // lookup
						rid, ok, err := ix.Lookup(nil, k)
						if err != nil {
							t.Errorf("worker %d lookup %#x: %v", w, k, err)
							return
						}
						p, had := shadow[k]
						if ok != had || (ok && rid.Page != p) {
							t.Errorf("worker %d lookup %#x = (%v,%v), shadow (%d,%v)", w, k, rid.Page, ok, p, had)
							return
						}
					}
				}
				// Final audit of everything this worker owns.
				for k, p := range shadow {
					rid, ok, err := ix.Lookup(nil, k)
					if err != nil || !ok || rid.Page != p {
						t.Errorf("worker %d final lookup %#x = (%v,%v,%v), want %d", w, k, rid.Page, ok, err, p)
						return
					}
				}
				totals[w] = shadow
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			return
		}

		// Global audit: one scan sees every surviving key, strictly sorted.
		want := 0
		for _, m := range totals {
			want += len(m)
		}
		got, prev := 0, uint64(0)
		if err := ix.Range(nil, 0, 1<<63, func(key uint64, rid core.RID) bool {
			if key <= prev {
				t.Errorf("global scan out of order: %#x after %#x", key, prev)
				return false
			}
			prev = key
			got++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("global scan saw %d keys, shadows hold %d", got, want)
		}

		st := ix.Stats()
		if st.Inserts == 0 || st.Scans == 0 {
			t.Errorf("stats did not record the run: %+v", st)
		}
		t.Logf("kind=%v restarts=%d latchWaits=%d", kind, st.Restarts, st.LatchWaits)
	})
}

// TestIndexConcurrentHotKeys drives all workers into one narrow key
// range so leaf splits, optimistic restarts and latch hand-offs collide
// constantly. Invariants are weaker than the disjoint-keyspace stress
// (workers race on the same keys) but every operation must stay
// error-free apart from ErrKeyExists, and the tree must end sorted with
// no duplicates.
func TestIndexConcurrentHotKeys(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind IndexKind) {
		_, ix := newIndexRigKind(t, 128, kind)

		const workers = 8
		opsPer := 1500
		if testing.Short() {
			opsPer = 300
		}

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(77 + w)))
				for op := 0; op < opsPer; op++ {
					k := uint64(rng.Intn(300) + 1) // everyone fights over 300 keys
					switch rng.Intn(4) {
					case 0, 1:
						err := ix.Insert(nil, k, core.RID{Page: core.PageID(k)})
						if err != nil && !errors.Is(err, ErrKeyExists) {
							t.Errorf("insert %d: %v", k, err)
							return
						}
					case 2:
						if _, err := ix.Delete(nil, k); err != nil {
							t.Errorf("delete %d: %v", k, err)
							return
						}
					default:
						rid, ok, err := ix.Lookup(nil, k)
						if err != nil {
							t.Errorf("lookup %d: %v", k, err)
							return
						}
						if ok && rid.Page != core.PageID(k) {
							t.Errorf("lookup %d = %v", k, rid.Page)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			return
		}

		prev := uint64(0)
		if err := ix.Range(nil, 0, 1<<63, func(key uint64, rid core.RID) bool {
			if key <= prev {
				t.Errorf("scan out of order or duplicate: %#x after %#x", key, prev)
				return false
			}
			if rid.Page != core.PageID(key) {
				t.Errorf("key %d maps to %v", key, rid.Page)
				return false
			}
			prev = key
			return true
		}); err != nil {
			t.Fatal(err)
		}
		st := ix.Stats()
		t.Logf("kind=%v restarts=%d latchWaits=%d", kind, st.Restarts, st.LatchWaits)
	})
}
