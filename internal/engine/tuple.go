package engine

import (
	"encoding/binary"
	"fmt"
)

// Schema is a fixed-width tuple layout: each field has a byte width.
// OLTP rows in the paper's analysis are dominated by fixed-length numeric
// attributes, whose in-place updates change only a few (usually the
// least-significant) bytes — the property the [N×M] scheme exploits.
type Schema struct {
	widths  []int
	offsets []int
	size    int
}

// NewSchema builds a schema from field widths.
func NewSchema(widths ...int) (*Schema, error) {
	s := &Schema{widths: widths, offsets: make([]int, len(widths))}
	for i, w := range widths {
		if w <= 0 {
			return nil, fmt.Errorf("engine: field %d has width %d", i, w)
		}
		s.offsets[i] = s.size
		s.size += w
	}
	return s, nil
}

// Size is the tuple size in bytes.
func (s *Schema) Size() int { return s.size }

// Fields is the number of fields.
func (s *Schema) Fields() int { return len(s.widths) }

// Offset returns the byte offset of field i within a tuple.
func (s *Schema) Offset(i int) int { return s.offsets[i] }

// Width returns the byte width of field i.
func (s *Schema) Width(i int) int { return s.widths[i] }

// New allocates a zero tuple.
func (s *Schema) New() []byte { return make([]byte, s.size) }

// GetUint reads field i as a little-endian unsigned integer (width ≤ 8).
func (s *Schema) GetUint(tuple []byte, i int) uint64 {
	off, w := s.offsets[i], s.widths[i]
	var buf [8]byte
	copy(buf[:], tuple[off:off+min(w, 8)])
	return binary.LittleEndian.Uint64(buf[:])
}

// SetUint writes field i as a little-endian unsigned integer. Thanks to
// little-endian order, small increments change only the low-order bytes —
// the paper's observation about numeric OLTP attributes.
func (s *Schema) SetUint(tuple []byte, i int, v uint64) {
	off, w := s.offsets[i], s.widths[i]
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	copy(tuple[off:off+min(w, 8)], buf[:min(w, 8)])
}

// AddUint increments field i by delta (modulo field width).
func (s *Schema) AddUint(tuple []byte, i int, delta uint64) {
	s.SetUint(tuple, i, s.GetUint(tuple, i)+delta)
}

// GetBytes returns a view of field i.
func (s *Schema) GetBytes(tuple []byte, i int) []byte {
	off, w := s.offsets[i], s.widths[i]
	return tuple[off : off+w]
}

// SetBytes copies data into field i (truncating/zero-padding to width).
func (s *Schema) SetBytes(tuple []byte, i int, data []byte) {
	off, w := s.offsets[i], s.widths[i]
	n := copy(tuple[off:off+w], data)
	for j := off + n; j < off+w; j++ {
		tuple[j] = 0
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
