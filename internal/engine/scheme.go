package engine

import (
	"errors"
	"fmt"

	"ipa/internal/buffer"
	"ipa/internal/core"
	"ipa/internal/ecc"
	"ipa/internal/noftl"
	"ipa/internal/page"
	"ipa/internal/sim"
)

// StorageScheme is the pluggable write-reduction scheme behind a
// PageStore's flush path. The paper's Table 1 frames IPA as one point
// in a design space; this interface makes the whole row selectable per
// region: how an update flush is served given the page's differential,
// how a logical page is completed on read, and what the scheme did.
//
// FlushUpdate serves an update flush of an existing page (the caller
// has already diffed the frame against its last flushed image; cs is
// non-empty). On success it must leave fr's flush bookkeeping
// (Flushed snapshot, UsedSlots, New) consistent with how the page was
// written. Materialize folds any scheme-held state (e.g. PDL
// differential records) into the base image read from flash; it
// returns the number of bytes applied. Epoch pairs with Materialize:
// a reader snapshots the epoch before reading the base page and
// retries when it changed, catching scheme-internal reorganisations
// (PDL merges) that fold state into base images concurrently.
// Invalidate drops scheme-held state for a page whose base image no
// longer needs it (page freed or fully rewritten).
type StorageScheme interface {
	Kind() noftl.Storage
	FlushUpdate(w *sim.Worker, fr *buffer.Frame, cs *core.ChangeSet) (FlushKind, error)
	Materialize(w *sim.Worker, id core.PageID, buf []byte) (int, error)
	Epoch() uint64
	Invalidate(id core.PageID)
	Stats() SchemeStats
}

// SchemeStats reports which scheme a store runs and the scheme's own
// counters (only PDL keeps state outside the region today).
type SchemeStats struct {
	Storage noftl.Storage
	PDL     noftl.PDLStats // zero unless Storage == StoragePDL
}

// oopScheme always rewrites the full page out of place — the baseline
// every write-reduction scheme is measured against.
type oopScheme struct{ s *PageStore }

func (o oopScheme) Kind() noftl.Storage { return noftl.StorageOOP }

func (o oopScheme) FlushUpdate(w *sim.Worker, fr *buffer.Frame, cs *core.ChangeSet) (FlushKind, error) {
	if err := o.s.writeOutOfPlace(w, fr); err != nil {
		return 0, err
	}
	return FlushOutOfPlace, nil
}

func (o oopScheme) Materialize(w *sim.Worker, id core.PageID, buf []byte) (int, error) {
	return 0, nil
}

func (o oopScheme) Epoch() uint64             { return 0 }
func (o oopScheme) Invalidate(id core.PageID) {}
func (o oopScheme) Stats() SchemeStats        { return SchemeStats{Storage: noftl.StorageOOP} }

// ipaScheme is the paper's scheme: plan [N×M×V] delta-records for the
// differential and ISPP-program them into the delta area of the page's
// current physical location, falling back to an out-of-place write when
// the differential overflows the budget. Materialisation happens inside
// page.Reconstruct on the raw image (the records travel with the page),
// so Materialize/Epoch/Invalidate are no-ops here.
type ipaScheme struct{ s *PageStore }

func (a ipaScheme) Kind() noftl.Storage { return noftl.StorageIPA }

func (a ipaScheme) FlushUpdate(w *sim.Worker, fr *buffer.Frame, cs *core.ChangeSet) (FlushKind, error) {
	s := a.s
	if s.region.CanAppend(fr.ID) {
		recs, perr := s.layout.Scheme.Plan(*cs, fr.UsedSlots)
		if perr == nil && len(recs) > 0 {
			if err := s.writeDelta(w, fr, recs); err == nil {
				return FlushDelta, nil
			} else if !errors.Is(err, noftl.ErrNotAppendable) {
				return 0, err
			}
			// Not appendable after all (e.g. chip budget raced out):
			// fall through to the out-of-place path.
		} else if perr != nil && perr != core.ErrSchemeOverflow {
			return 0, perr
		}
	}
	if err := s.writeOutOfPlace(w, fr); err != nil {
		return 0, err
	}
	return FlushOutOfPlace, nil
}

func (a ipaScheme) Materialize(w *sim.Worker, id core.PageID, buf []byte) (int, error) {
	return 0, nil
}

func (a ipaScheme) Epoch() uint64             { return 0 }
func (a ipaScheme) Invalidate(id core.PageID) {}
func (a ipaScheme) Stats() SchemeStats        { return SchemeStats{Storage: noftl.StorageIPA} }

// pdlScheme is Page-Differential Logging: the differential is appended
// as one record to a per-chip log block (noftl.DiffLog) and folded into
// the base image on read. Oversized differentials and log-space
// exhaustion fall back to a full out-of-place write, which first drops
// the page's outstanding records — the fallback ordering matters, see
// FlushUpdate.
type pdlScheme struct {
	s  *PageStore
	dl *noftl.DiffLog
}

func (p pdlScheme) Kind() noftl.Storage { return noftl.StoragePDL }

func (p pdlScheme) FlushUpdate(w *sim.Worker, fr *buffer.Frame, cs *core.ChangeSet) (FlushKind, error) {
	s := p.s
	pg, err := page.Attach(fr.Data, s.layout)
	if err != nil {
		return 0, err
	}
	err = p.dl.Append(w, fr.ID, pg.LSN(), cs)
	if err == nil {
		fr.Flushed = append(fr.Flushed[:0], fr.Data...)
		return FlushDelta, nil
	}
	if !errors.Is(err, noftl.ErrPDLRecordTooLarge) && !errors.Is(err, noftl.ErrPDLNoSpace) {
		return 0, err
	}
	// Fall back to a full rewrite. Invalidate BEFORE the write: a merge
	// serialised behind the log's mutex could otherwise fold the page's
	// old records over the fresh base image and resurrect stale bytes.
	p.dl.Invalidate(fr.ID)
	if err := s.writeOutOfPlace(w, fr); err != nil {
		return 0, err
	}
	return FlushOutOfPlace, nil
}

func (p pdlScheme) Materialize(w *sim.Worker, id core.PageID, buf []byte) (int, error) {
	return p.dl.ApplyTo(w, id, buf)
}

func (p pdlScheme) Epoch() uint64 { return p.dl.Epoch() }

func (p pdlScheme) Invalidate(id core.PageID) { p.dl.Invalidate(id) }

func (p pdlScheme) Stats() SchemeStats {
	return SchemeStats{Storage: noftl.StoragePDL, PDL: p.dl.Stats()}
}

// newScheme builds the store's scheme implementation for the region's
// configured storage, creating the DiffLog for PDL regions.
func (s *PageStore) newScheme(kind noftl.Storage) (StorageScheme, error) {
	switch kind {
	case noftl.StorageIPA:
		return ipaScheme{s: s}, nil
	case noftl.StorageOOP:
		return oopScheme{s: s}, nil
	case noftl.StoragePDL:
		if s.dl == nil {
			dl, err := noftl.NewDiffLog(s.region, noftl.PDLConfig{EncodeOOB: s.pdlOOB()})
			if err != nil {
				return nil, err
			}
			s.dl = dl
		}
		return pdlScheme{s: s, dl: s.dl}, nil
	default:
		return nil, fmt.Errorf("engine: unknown storage %d", int(kind))
	}
}

func (s *PageStore) currentScheme() StorageScheme {
	s.schemeMu.RLock()
	defer s.schemeMu.RUnlock()
	return s.scheme
}

// Storage returns the scheme the store currently flushes with.
func (s *PageStore) Storage() noftl.Storage { return s.currentScheme().Kind() }

// SetStorage switches the store's write-reduction scheme at runtime
// (the advisor's auto-apply hook). Switching away from PDL first folds
// every outstanding differential into its base page. Switching to IPA
// requires the region to have been created with an IPA layout (a delta
// area cannot be retrofitted onto pages already written without one),
// and switching to PDL requires the opposite — no delta area — since
// merges rewrite raw base images.
func (s *PageStore) SetStorage(w *sim.Worker, kind noftl.Storage) error {
	s.schemeMu.Lock()
	defer s.schemeMu.Unlock()
	if s.scheme.Kind() == kind {
		return nil
	}
	switch kind {
	case noftl.StorageIPA:
		if s.layout.Scheme.Disabled() || s.region.Mode() == noftl.ModeNone {
			return fmt.Errorf("engine: region %q was not created with an IPA layout", s.region.Name())
		}
	case noftl.StoragePDL:
		if !s.layout.Scheme.Disabled() {
			return fmt.Errorf("engine: region %q has an IPA delta area; PDL requires a plain layout", s.region.Name())
		}
	case noftl.StorageOOP:
	default:
		return fmt.Errorf("engine: unknown storage %d", int(kind))
	}
	if s.scheme.Kind() == noftl.StoragePDL && s.dl != nil {
		if err := s.dl.MergeAll(w); err != nil {
			return err
		}
	}
	next, err := s.newScheme(kind)
	if err != nil {
		return err
	}
	s.scheme = next
	return nil
}

// pdlOOB returns the DiffLog's OOB encoder hook: merged base images get
// the same body ECC an out-of-place flush would attach.
func (s *PageStore) pdlOOB() func([]byte) []byte {
	if !s.useECC {
		return nil
	}
	return func(data []byte) []byte {
		return ecc.Encode(data[:s.sect.BodyLen])
	}
}
