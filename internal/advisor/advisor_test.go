package advisor

import (
	"math/rand"
	"testing"

	"ipa/internal/core"
	"ipa/internal/wal"
)

func tpccProfile() *Profile {
	// TPC-C-like: most flushes change 3 bytes, some 6-9, a tail larger.
	p := &Profile{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		r := rng.Intn(100)
		switch {
		case r < 60:
			p.Add(3, 10)
		case r < 85:
			p.Add(6, 12)
		case r < 95:
			p.Add(9, 12)
		default:
			p.Add(40+rng.Intn(60), 12)
		}
	}
	return p
}

func TestRecommendPerformance(t *testing.T) {
	rec, err := Recommend(tpccProfile(), Performance, 4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// 70th percentile of the distribution lands at 6 bytes.
	if rec.Scheme.M < 3 || rec.Scheme.M > 9 {
		t.Errorf("M = %d, want in [3,9]", rec.Scheme.M)
	}
	if rec.Scheme.N < 2 || rec.Scheme.N > 4 {
		t.Errorf("N = %d", rec.Scheme.N)
	}
	if rec.CoveredFraction < 0.6 {
		t.Errorf("covered = %v", rec.CoveredFraction)
	}
	if rec.SpaceOverhead <= 0 || rec.SpaceOverhead > 0.1 {
		t.Errorf("space overhead = %v", rec.SpaceOverhead)
	}
	if rec.Rationale == "" {
		t.Error("no rationale")
	}
}

func TestRecommendGoalsDiffer(t *testing.T) {
	p := tpccProfile()
	perf, _ := Recommend(p, Performance, 4, 4096)
	lon, _ := Recommend(p, Longevity, 4, 4096)
	spc, _ := Recommend(p, Space, 4, 4096)
	if lon.Scheme.N != 4 {
		t.Errorf("longevity N = %d, want maxN", lon.Scheme.N)
	}
	if !(spc.Scheme.M <= perf.Scheme.M && perf.Scheme.M <= lon.Scheme.M) {
		t.Errorf("M ordering violated: space %d, perf %d, longevity %d",
			spc.Scheme.M, perf.Scheme.M, lon.Scheme.M)
	}
	if !(spc.SpaceOverhead <= lon.SpaceOverhead) {
		t.Errorf("space goal costs more than longevity: %v vs %v",
			spc.SpaceOverhead, lon.SpaceOverhead)
	}
}

func TestRecommendEmptyProfile(t *testing.T) {
	if _, err := Recommend(&Profile{}, Performance, 3, 4096); err == nil {
		t.Error("empty profile accepted")
	}
}

func TestRecommendClamps(t *testing.T) {
	p := &Profile{}
	for i := 0; i < 100; i++ {
		p.Add(4000, 12) // huge updates
	}
	rec, err := Recommend(p, Longevity, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Scheme.M != core.MaxM {
		t.Errorf("M = %d, want clamped to %d", rec.Scheme.M, core.MaxM)
	}
	if rec.Scheme.N != 1 {
		t.Errorf("N = %d, want clamped maxN 1", rec.Scheme.N)
	}
}

func TestFromLog(t *testing.T) {
	l := wal.NewLog(0)
	l.Append(wal.Record{Type: wal.RecBegin, TxID: 1})
	// Two updates to page 7 within one tx: 1 + 2 changed bytes.
	l.Append(wal.Record{Type: wal.RecUpdate, TxID: 1, Page: 7,
		Before: []byte{0, 0, 0, 0}, After: []byte{1, 0, 0, 0}})
	l.Append(wal.Record{Type: wal.RecUpdate, TxID: 1, Page: 7,
		Before: []byte{1, 0, 0, 0}, After: []byte{1, 2, 3, 0}})
	l.Append(wal.Record{Type: wal.RecCommit, TxID: 1})
	// Second tx, different page, longer after-image.
	l.Append(wal.Record{Type: wal.RecBegin, TxID: 2})
	l.Append(wal.Record{Type: wal.RecUpdate, TxID: 2, Page: 9,
		Before: []byte{5}, After: []byte{5, 6, 7}})
	l.Append(wal.Record{Type: wal.RecCommit, TxID: 2})

	p := FromLog(l)
	if p.Len() != 2 {
		t.Fatalf("samples = %d, want 2", p.Len())
	}
	// Page 7 accumulated 3 changed bytes; page 9 saw 2 appended bytes.
	seen := map[int]bool{}
	for _, n := range p.Net {
		seen[n] = true
	}
	if !seen[3] || !seen[2] {
		t.Errorf("net samples = %v", p.Net)
	}
	// The profile feeds Recommend end-to-end.
	if _, err := Recommend(p, Space, 3, 4096); err != nil {
		t.Fatal(err)
	}
}

func TestGoalString(t *testing.T) {
	if Performance.String() != "performance" || Longevity.String() != "longevity" || Space.String() != "space" {
		t.Error("goal strings wrong")
	}
}
