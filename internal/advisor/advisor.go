// Package advisor implements the IPA advisor (paper Sec. 8.4): it
// analyses the update-size behaviour of the current workload — the
// paper profiles the DB log, which contains all update sizes,
// frequencies and skew — and recommends an [N×M] scheme plus metadata
// budget V for a chosen optimisation goal:
//
//   - Performance: maximise the fraction of flushes served as In-Place
//     Appends while keeping space overhead moderate;
//   - Longevity: larger [N×M] — fewer erases and page migrations;
//   - Space: smallest delta-record area that still captures the bulk of
//     updates (effective cost/GB).
package advisor

import (
	"fmt"
	"sort"

	"ipa/internal/core"
	"ipa/internal/wal"
)

// Goal selects the advisor's optimisation target.
type Goal int

const (
	Performance Goal = iota
	Longevity
	Space
)

func (g Goal) String() string {
	switch g {
	case Performance:
		return "performance"
	case Longevity:
		return "longevity"
	case Space:
		return "space"
	default:
		return fmt.Sprintf("Goal(%d)", int(g))
	}
}

// Profile is the per-object update-size statistic the advisor works on:
// one sample per page flush, in net (body) and metadata bytes.
type Profile struct {
	Net  []int
	Meta []int
}

// Add records one flush observation.
func (p *Profile) Add(net, meta int) {
	p.Net = append(p.Net, net)
	p.Meta = append(p.Meta, meta)
}

// Len returns the number of samples.
func (p *Profile) Len() int { return len(p.Net) }

// FromLog builds per-page-cohort profiles from the write-ahead log, the
// way the paper's advisor profiles the DB log file: consecutive update
// records to the same page between flush boundaries approximate the
// per-flush change volume. Without flush markers in the log we treat
// each transaction's touch of a page as one accumulation unit.
func FromLog(l *wal.Log) *Profile {
	p := &Profile{}
	type acc struct{ net int }
	perPage := make(map[uint64]*acc)
	l.Scan(l.Tail(), func(r wal.Record) bool {
		switch r.Type {
		case wal.RecUpdate:
			a := perPage[uint64(r.Page)]
			if a == nil {
				a = &acc{}
				perPage[uint64(r.Page)] = a
			}
			// Changed bytes ≈ differing bytes between images.
			a.net += changedBytes(r.Before, r.After)
		case wal.RecCommit, wal.RecEnd:
			// Commit boundaries flush accumulations into samples.
			for k, a := range perPage {
				if a.net > 0 {
					p.Add(a.net, core.DefaultV)
				}
				delete(perPage, k)
			}
		}
		return true
	})
	for _, a := range perPage {
		if a.net > 0 {
			p.Add(a.net, core.DefaultV)
		}
	}
	return p
}

func changedBytes(before, after []byte) int {
	n := len(after)
	if len(before) < n {
		n = len(before)
	}
	diff := 0
	for i := 0; i < n; i++ {
		if before[i] != after[i] {
			diff++
		}
	}
	diff += len(after) - n
	if diff < 0 {
		diff = -diff
	}
	return diff
}

// Recommendation is the advisor's output.
type Recommendation struct {
	Scheme core.Scheme
	// CoveredFraction is the fraction of observed flushes a single
	// delta-record of the recommended M absorbs.
	CoveredFraction float64
	// SpaceOverhead for the given page size.
	SpaceOverhead float64
	// Rationale explains the choice.
	Rationale string
}

// Recommend analyses a profile and proposes an [N×M] scheme. maxN bounds
// the append budget by flash type (2-3 on MLC, more on SLC); pageSize is
// used for space-overhead reporting.
func Recommend(p *Profile, goal Goal, maxN, pageSize int) (Recommendation, error) {
	if p.Len() == 0 {
		return Recommendation{}, fmt.Errorf("advisor: empty profile")
	}
	if maxN < 1 {
		maxN = 1
	}
	net := append([]int(nil), p.Net...)
	sort.Ints(net)
	quantile := func(q float64) int {
		idx := int(q*float64(len(net))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(net) {
			idx = len(net) - 1
		}
		return net[idx]
	}
	// Metadata budget: high quantile of observed metadata bytes, capped
	// at the paper's practical bound.
	meta := append([]int(nil), p.Meta...)
	sort.Ints(meta)
	v := core.DefaultV
	if len(meta) > 0 {
		idx := int(0.95*float64(len(meta))) - 1
		if idx < 0 {
			idx = 0
		}
		if mv := meta[idx]; mv > 0 && mv < v {
			v = mv
		}
	}

	var m, n int
	var why string
	switch goal {
	case Performance:
		// M at the knee of the CDF (≈70th percentile), N mid-budget: most
		// flushes become appends without a bloated page.
		m = quantile(0.70)
		n = (maxN + 1) / 2
		if n < 2 && maxN >= 2 {
			n = 2
		}
		why = "M at the 70th percentile of net update sizes; N at half the flash re-program budget"
	case Longevity:
		// Generous budgets: fewer out-of-place writes and erases.
		m = quantile(0.90)
		n = maxN
		why = "M at the 90th percentile and N at the full re-program budget to minimise erases"
	case Space:
		// Tight budgets: capture the majority of updates at minimal cost.
		m = quantile(0.50)
		n = 2
		if n > maxN {
			n = maxN
		}
		why = "M at the median update size with N=2 for minimal reserved space"
	}
	if m < 1 {
		m = 1
	}
	if m > core.MaxM {
		m = core.MaxM
	}
	s := core.Scheme{N: n, M: m, V: v}
	if err := s.Validate(); err != nil {
		return Recommendation{}, err
	}
	covered := 0
	for _, u := range net {
		if u <= m {
			covered++
		}
	}
	return Recommendation{
		Scheme:          s,
		CoveredFraction: float64(covered) / float64(len(net)),
		SpaceOverhead:   s.SpaceOverhead(pageSize),
		Rationale:       fmt.Sprintf("%s goal: %s (V=%d from observed metadata changes)", goal, why, v),
	}, nil
}
