// Package advisor implements the IPA advisor (paper Sec. 8.4): it
// analyses the update-size behaviour of the current workload — the
// paper profiles the DB log, which contains all update sizes,
// frequencies and skew — and recommends an [N×M] scheme plus metadata
// budget V for a chosen optimisation goal:
//
//   - Performance: maximise the fraction of flushes served as In-Place
//     Appends while keeping space overhead moderate;
//   - Longevity: larger [N×M] — fewer erases and page migrations;
//   - Space: smallest delta-record area that still captures the bulk of
//     updates (effective cost/GB).
package advisor

import (
	"fmt"
	"sort"

	"ipa/internal/core"
	"ipa/internal/noftl"
	"ipa/internal/wal"
)

// Goal selects the advisor's optimisation target.
type Goal int

const (
	Performance Goal = iota
	Longevity
	Space
)

func (g Goal) String() string {
	switch g {
	case Performance:
		return "performance"
	case Longevity:
		return "longevity"
	case Space:
		return "space"
	default:
		return fmt.Sprintf("Goal(%d)", int(g))
	}
}

// Profile is the per-object update-size statistic the advisor works on:
// one sample per page flush, in net (body) and metadata bytes.
type Profile struct {
	Net  []int
	Meta []int
}

// Add records one flush observation.
func (p *Profile) Add(net, meta int) {
	p.Net = append(p.Net, net)
	p.Meta = append(p.Meta, meta)
}

// Len returns the number of samples.
func (p *Profile) Len() int { return len(p.Net) }

// NetQuantile returns the q-quantile (0 < q <= 1) of the net update-size
// distribution — one point of the update-size CDF the paper's Table 1
// decision is based on. Returns 0 on an empty profile.
func (p *Profile) NetQuantile(q float64) int {
	if len(p.Net) == 0 {
		return 0
	}
	net := append([]int(nil), p.Net...)
	sort.Ints(net)
	idx := int(q*float64(len(net))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(net) {
		idx = len(net) - 1
	}
	return net[idx]
}

// FromLog builds per-page-cohort profiles from the write-ahead log, the
// way the paper's advisor profiles the DB log file: consecutive update
// records to the same page between flush boundaries approximate the
// per-flush change volume. Without flush markers in the log we treat
// each transaction's touch of a page as one accumulation unit.
func FromLog(l *wal.Log) *Profile {
	p := &Profile{}
	type acc struct{ net int }
	perPage := make(map[uint64]*acc)
	l.Scan(l.Tail(), func(r wal.Record) bool {
		switch r.Type {
		case wal.RecUpdate:
			a := perPage[uint64(r.Page)]
			if a == nil {
				a = &acc{}
				perPage[uint64(r.Page)] = a
			}
			// Changed bytes ≈ differing bytes between images.
			a.net += changedBytes(r.Before, r.After)
		case wal.RecCommit, wal.RecEnd:
			// Commit boundaries flush accumulations into samples.
			for k, a := range perPage {
				if a.net > 0 {
					p.Add(a.net, core.DefaultV)
				}
				delete(perPage, k)
			}
		}
		return true
	})
	for _, a := range perPage {
		if a.net > 0 {
			p.Add(a.net, core.DefaultV)
		}
	}
	return p
}

// FromLogByTable builds one profile per table from the write-ahead log.
// owner maps a page id to its owning table (false for pages that belong
// to no table — catalog, index interior pages, etc., which land in the
// profile keyed by the empty string). Accumulation follows FromLog.
func FromLogByTable(l *wal.Log, owner func(core.PageID) (string, bool)) map[string]*Profile {
	profs := make(map[string]*Profile)
	sample := func(page uint64, net int) {
		name := ""
		if owner != nil {
			if t, ok := owner(core.PageID(page)); ok {
				name = t
			}
		}
		p := profs[name]
		if p == nil {
			p = &Profile{}
			profs[name] = p
		}
		p.Add(net, core.DefaultV)
	}
	type acc struct{ net int }
	perPage := make(map[uint64]*acc)
	l.Scan(l.Tail(), func(r wal.Record) bool {
		switch r.Type {
		case wal.RecUpdate:
			a := perPage[uint64(r.Page)]
			if a == nil {
				a = &acc{}
				perPage[uint64(r.Page)] = a
			}
			a.net += changedBytes(r.Before, r.After)
		case wal.RecCommit, wal.RecEnd:
			for k, a := range perPage {
				if a.net > 0 {
					sample(k, a.net)
				}
				delete(perPage, k)
			}
		}
		return true
	})
	for k, a := range perPage {
		if a.net > 0 {
			sample(k, a.net)
		}
	}
	return profs
}

func changedBytes(before, after []byte) int {
	n := len(after)
	if len(before) < n {
		n = len(before)
	}
	diff := 0
	for i := 0; i < n; i++ {
		if before[i] != after[i] {
			diff++
		}
	}
	diff += len(after) - n
	if diff < 0 {
		diff = -diff
	}
	return diff
}

// SchemeRecommendation is the advisor's [N×M×V] output.
type SchemeRecommendation struct {
	Scheme core.Scheme
	// CoveredFraction is the fraction of observed flushes a single
	// delta-record of the recommended M absorbs.
	CoveredFraction float64
	// SpaceOverhead for the given page size.
	SpaceOverhead float64
	// Rationale explains the choice.
	Rationale string
}

// Recommendation is the advisor's output.
//
// Deprecated: use SchemeRecommendation; this alias keeps old callers
// compiling.
type Recommendation = SchemeRecommendation

// Options parameterises a recommendation.
type Options struct {
	// Goal selects the optimisation target (zero value: Performance).
	Goal Goal
	// MaxN bounds the append budget by flash type (2-3 on MLC, more on
	// SLC). Values below 1 are treated as 1.
	MaxN int
	// PageSize is the database page size, used for space-overhead
	// reporting and the PDL small-differential threshold.
	PageSize int
}

// Recommend analyses a profile and proposes an [N×M] scheme.
//
// Deprecated: use RecommendScheme with an Options struct; the
// positional signature is frozen and will not grow new parameters.
func Recommend(p *Profile, goal Goal, maxN, pageSize int) (SchemeRecommendation, error) {
	return RecommendScheme(p, Options{Goal: goal, MaxN: maxN, PageSize: pageSize})
}

// RecommendScheme analyses a profile and proposes an [N×M] scheme for
// the options' goal.
func RecommendScheme(p *Profile, opts Options) (SchemeRecommendation, error) {
	goal, maxN, pageSize := opts.Goal, opts.MaxN, opts.PageSize
	if p.Len() == 0 {
		return SchemeRecommendation{}, fmt.Errorf("advisor: empty profile")
	}
	if maxN < 1 {
		maxN = 1
	}
	net := append([]int(nil), p.Net...)
	sort.Ints(net)
	quantile := func(q float64) int {
		idx := int(q*float64(len(net))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(net) {
			idx = len(net) - 1
		}
		return net[idx]
	}
	// Metadata budget: high quantile of observed metadata bytes, capped
	// at the paper's practical bound.
	meta := append([]int(nil), p.Meta...)
	sort.Ints(meta)
	v := core.DefaultV
	if len(meta) > 0 {
		idx := int(0.95*float64(len(meta))) - 1
		if idx < 0 {
			idx = 0
		}
		if mv := meta[idx]; mv > 0 && mv < v {
			v = mv
		}
	}

	var m, n int
	var why string
	switch goal {
	case Performance:
		// M at the knee of the CDF (≈70th percentile), N mid-budget: most
		// flushes become appends without a bloated page.
		m = quantile(0.70)
		n = (maxN + 1) / 2
		if n < 2 && maxN >= 2 {
			n = 2
		}
		why = "M at the 70th percentile of net update sizes; N at half the flash re-program budget"
	case Longevity:
		// Generous budgets: fewer out-of-place writes and erases.
		m = quantile(0.90)
		n = maxN
		why = "M at the 90th percentile and N at the full re-program budget to minimise erases"
	case Space:
		// Tight budgets: capture the majority of updates at minimal cost.
		m = quantile(0.50)
		n = 2
		if n > maxN {
			n = maxN
		}
		why = "M at the median update size with N=2 for minimal reserved space"
	}
	if m < 1 {
		m = 1
	}
	if m > core.MaxM {
		m = core.MaxM
	}
	s := core.Scheme{N: n, M: m, V: v}
	if err := s.Validate(); err != nil {
		return SchemeRecommendation{}, err
	}
	covered := 0
	for _, u := range net {
		if u <= m {
			covered++
		}
	}
	return SchemeRecommendation{
		Scheme:          s,
		CoveredFraction: float64(covered) / float64(len(net)),
		SpaceOverhead:   s.SpaceOverhead(pageSize),
		Rationale:       fmt.Sprintf("%s goal: %s (V=%d from observed metadata changes)", goal, why, v),
	}, nil
}

// StorageAdvice is the advisor's per-table storage-scheme decision: the
// paper's Table 1 design-space comparison applied to one table's live
// update-size CDF.
type StorageAdvice struct {
	// Storage is the recommended write-reduction scheme.
	Storage noftl.Storage
	// Scheme is the [N×M×V] recommendation that would serve an IPA
	// region for this table (meaningful whatever Storage says, for
	// comparison).
	Scheme SchemeRecommendation
	// P50 and P90 are the quantiles of the net update-size CDF the
	// decision is based on.
	P50, P90 int
	// Rationale explains the choice.
	Rationale string
}

// RecommendStorage proposes a storage scheme for one table's profile.
// The decision mirrors the paper's framing: IPA when the bulk of the
// table's updates fit a delta-record (CoveredFraction >= 1/2), PDL when
// updates are small page differentials (90th percentile within a
// quarter page) that IPA's fixed record cannot absorb, and plain
// out-of-place writes for large-update tables where both schemes
// degrade to page rewrites anyway.
func RecommendStorage(p *Profile, opts Options) (StorageAdvice, error) {
	rec, err := RecommendScheme(p, opts)
	if err != nil {
		return StorageAdvice{}, err
	}
	a := StorageAdvice{
		Scheme: rec,
		P50:    p.NetQuantile(0.50),
		P90:    p.NetQuantile(0.90),
	}
	pdlBudget := opts.PageSize / 4
	switch {
	case rec.CoveredFraction >= 0.5:
		a.Storage = noftl.StorageIPA
		a.Rationale = fmt.Sprintf("ipa: %.0f%% of flushes fit one %s delta-record",
			rec.CoveredFraction*100, rec.Scheme)
	case pdlBudget > 0 && a.P90 <= pdlBudget:
		a.Storage = noftl.StoragePDL
		a.Rationale = fmt.Sprintf("pdl: updates exceed the delta-record budget but stay small (p90 %dB <= %dB differential budget)",
			a.P90, pdlBudget)
	default:
		a.Storage = noftl.StorageOOP
		a.Rationale = fmt.Sprintf("oop: large updates (p90 %dB) degrade both ipa and pdl to page rewrites", a.P90)
	}
	return a, nil
}
