package ipl

import (
	"fmt"
	"sort"

	"ipa/internal/core"
	"ipa/internal/trace"
)

// IPAConfig parameterises the In-Place Appends replay model used in the
// IPL comparison (same flash geometry as the IPL configuration, plus the
// [N×M] scheme and a page-mapped out-of-place store with greedy GC).
type IPAConfig struct {
	Scheme              core.Scheme
	PhysPagesPerLogical int     // 4 (8KB logical / 2KB physical)
	LogicalPerEraseUnit int     // logical pages per erase unit: 16 (no log region)
	OverProvision       float64 // default 0.10
	MetaBudgetPerRecord int     // V; defaults to Scheme.V
}

func (c IPAConfig) withDefaults() IPAConfig {
	if c.PhysPagesPerLogical == 0 {
		c.PhysPagesPerLogical = 4
	}
	if c.LogicalPerEraseUnit == 0 {
		c.LogicalPerEraseUnit = 16
	}
	if c.OverProvision <= 0 {
		c.OverProvision = 0.10
	}
	if c.MetaBudgetPerRecord == 0 {
		c.MetaBudgetPerRecord = c.Scheme.V
	}
	return c
}

// IPAResult carries the Table 2 metrics for the IPA side.
type IPAResult struct {
	Fetches        int
	Evictions      int
	DeltaWrites    int
	OutOfPlace     int
	GCMigrations   int
	Erases         int
	PhysReads      int
	PhysWrites     int
	WriteAmplific  float64
	ReadAmplific   float64
	ReservedSpaceF float64
}

// IPAModel replays a trace under In-Place Appends with a lightweight
// page-mapped flash (counting model: block occupancy and validity, no
// data).
type IPAModel struct {
	cfg IPAConfig
	res IPAResult

	// per logical page: delta records already appended
	used map[core.PageID]int
	// mapping: logical page → (block, slot); blocks hold logical pages.
	loc     map[core.PageID]int // block index
	blocks  []ipaBlock
	free    []int // free block ids
	active  int   // current write block, -1 none
	actUsed int
}

type ipaBlock struct {
	valid  int
	filled int
}

// NewIPAModel sizes the model to fit the trace's page population with
// the configured over-provisioning.
func NewIPAModel(cfg IPAConfig, pages int) *IPAModel {
	cfg = cfg.withDefaults()
	needBlocks := int(float64(pages)/float64(cfg.LogicalPerEraseUnit)/(1-cfg.OverProvision)) + 4
	m := &IPAModel{
		cfg:    cfg,
		used:   make(map[core.PageID]int),
		loc:    make(map[core.PageID]int),
		blocks: make([]ipaBlock, needBlocks),
		active: -1,
	}
	for i := range m.blocks {
		m.free = append(m.free, i)
	}
	return m
}

// Replay consumes the whole trace.
func (m *IPAModel) Replay(t *trace.Trace) IPAResult {
	for _, e := range t.Events() {
		switch e.Kind {
		case trace.EvFetch:
			m.res.Fetches++
			m.res.PhysReads += m.cfg.PhysPagesPerLogical
		case trace.EvEvict:
			m.evict(e)
		}
	}
	m.finish()
	return m.res
}

func (m *IPAModel) evict(e trace.Event) {
	m.res.Evictions++
	if !e.New {
		if m.tryDelta(e) {
			return
		}
	}
	m.writeOutOfPlace(e.Page)
}

// tryDelta checks the [N×M] budget for the accumulated changes.
func (m *IPAModel) tryDelta(e trace.Event) bool {
	s := m.cfg.Scheme
	if s.Disabled() {
		return false
	}
	if _, mapped := m.loc[e.Page]; !mapped {
		return false
	}
	used := m.used[e.Page]
	net := int(e.Net)
	meta := int(e.Gross) - net
	if meta < 0 {
		meta = 0
	}
	if !s.FitsBudget(net, meta, used) {
		return false
	}
	need := (net + s.M - 1) / s.M
	if mv := (meta + s.V - 1) / max1(s.V); s.V > 0 && mv > need {
		need = mv
	}
	if need == 0 {
		need = 1
	}
	m.used[e.Page] = used + need
	m.res.DeltaWrites++
	m.res.PhysWrites++ // one partial/ISPP program
	return true
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// writeOutOfPlace relocates the logical page, invalidating the old copy
// and running greedy GC when the free pool runs low.
func (m *IPAModel) writeOutOfPlace(p core.PageID) {
	if old, ok := m.loc[p]; ok {
		m.blocks[old].valid--
	}
	blk := m.allocSlot()
	m.loc[p] = blk
	m.blocks[blk].valid++
	m.used[p] = 0
	m.res.OutOfPlace++
	m.res.PhysWrites += m.cfg.PhysPagesPerLogical
}

// allocSlot returns a block with room for one logical page, collecting
// when the free pool is at its reserve and reusing any write point the
// collector installs. If the pool is truly exhausted (over-subscribed
// model), capacity grows by one block rather than failing.
func (m *IPAModel) allocSlot() int {
	for attempt := 0; ; attempt++ {
		if m.active >= 0 && m.actUsed < m.cfg.LogicalPerEraseUnit {
			m.actUsed++
			m.blocks[m.active].filled++
			return m.active
		}
		if len(m.free) <= 2 && attempt < 2*len(m.blocks) {
			m.collect()
			if m.active >= 0 && m.actUsed < m.cfg.LogicalPerEraseUnit {
				continue
			}
		}
		if len(m.free) == 0 {
			m.blocks = append(m.blocks, ipaBlock{})
			m.free = append(m.free, len(m.blocks)-1)
		}
		m.active = m.free[0]
		m.free = m.free[1:]
		m.actUsed = 0
		m.blocks[m.active] = ipaBlock{}
	}
}

// collect erases the fullest-garbage block, migrating its valid pages.
func (m *IPAModel) collect() {
	victim := -1
	for i := range m.blocks {
		if i == m.active || m.blocks[i].filled == 0 || contains(m.free, i) {
			continue
		}
		if victim < 0 || m.blocks[i].valid < m.blocks[victim].valid {
			victim = i
		}
	}
	if victim < 0 {
		return
	}
	// Migrate valid pages: they move to the active/new blocks.
	migrating := make([]core.PageID, 0)
	for p, b := range m.loc {
		if b == victim {
			migrating = append(migrating, p)
		}
	}
	sort.Slice(migrating, func(i, j int) bool { return migrating[i] < migrating[j] })
	m.res.GCMigrations += len(migrating)
	m.res.PhysReads += len(migrating) * m.cfg.PhysPagesPerLogical
	m.res.PhysWrites += len(migrating) * m.cfg.PhysPagesPerLogical
	m.blocks[victim] = ipaBlock{}
	m.res.Erases++
	victimReused := false
	for _, p := range migrating {
		blk := m.allocMigration(victim)
		if blk == victim {
			victimReused = true
		}
		m.loc[p] = blk
		m.blocks[blk].valid++
		// Delta records move verbatim with the raw image; budget intact.
	}
	if !victimReused {
		m.free = append(m.free, victim)
	}
}

// allocMigration places one migrated page, preferring the active block
// and free blocks; as a last resort it reuses the just-erased victim
// (valid pages were read out before the erase was counted).
func (m *IPAModel) allocMigration(victim int) int {
	if m.active >= 0 && m.actUsed < m.cfg.LogicalPerEraseUnit {
		m.actUsed++
		m.blocks[m.active].filled++
		return m.active
	}
	if len(m.free) > 0 {
		m.active = m.free[0]
		m.free = m.free[1:]
	} else {
		m.active = victim
	}
	m.actUsed = 1
	m.blocks[m.active] = ipaBlock{filled: 1}
	return m.active
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// finish computes the Appendix B ratios for IPA:
//
//	WA = (deltas·1 + oop·4 + migrations·4) / (evictions·4)
//	RA = (fetches·4 + migrations·4) / (fetches·4)
func (m *IPAModel) finish() {
	c := m.cfg
	if m.res.Evictions > 0 {
		m.res.WriteAmplific = float64(m.res.DeltaWrites+
			(m.res.OutOfPlace+m.res.GCMigrations)*c.PhysPagesPerLogical) /
			float64(m.res.Evictions*c.PhysPagesPerLogical)
	}
	if m.res.Fetches > 0 {
		m.res.ReadAmplific = float64((m.res.Fetches+m.res.GCMigrations)*c.PhysPagesPerLogical) /
			float64(m.res.Fetches*c.PhysPagesPerLogical)
	}
	// IPA reserves only the delta-record area of each page.
	m.res.ReservedSpaceF = c.Scheme.SpaceOverhead(8192)
}

// String renders the result like a Table 2 column.
func (r IPAResult) String() string {
	return fmt.Sprintf("WA=%.2f RA=%.2f erases=%d deltas=%d oop=%d reads=%d writes=%d",
		r.WriteAmplific, r.ReadAmplific, r.Erases, r.DeltaWrites, r.OutOfPlace, r.PhysReads, r.PhysWrites)
}
