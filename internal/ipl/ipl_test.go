package ipl

import (
	"bytes"
	"math/rand"
	"testing"

	"ipa/internal/core"
	"ipa/internal/trace"
)

// synthTrace builds a trace of random fetch/evict pairs over `pages`
// pages with update sizes drawn from sizes. Accesses follow the OLTP
// 80/20 skew (75% of accesses hit 20% of the data in TPC-C), which is
// what makes greedy garbage collection effective on the IPA side.
func synthTrace(seed int64, pages, events int, sizes []int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	t := trace.New()
	// Initial population: every page is written new once.
	for p := 1; p <= pages; p++ {
		t.RecordEvict(core.PageID(p), 0, 0, true)
	}
	hot := pages / 5
	if hot < 1 {
		hot = 1
	}
	for i := 0; i < events; i++ {
		var p core.PageID
		if rng.Intn(100) < 80 {
			p = core.PageID(rng.Intn(hot) + 1)
		} else {
			p = core.PageID(rng.Intn(pages) + 1)
		}
		t.RecordFetch(p)
		n := sizes[rng.Intn(len(sizes))]
		t.RecordEvict(p, n, n+10, false)
	}
	return t
}

func TestIPLSimulatorBasics(t *testing.T) {
	tr := synthTrace(1, 64, 2000, []int{3, 4, 6})
	res := NewSimulator(Config{}).Replay(tr)
	if res.Fetches != 2000 || res.Evictions != 2064 {
		t.Fatalf("counts: %+v", res)
	}
	// Appendix B: every fetch reads the page AND the log region → RA ≈ 2
	// plus merge overhead.
	if res.ReadAmplific < 2.0 {
		t.Errorf("IPL RA = %.2f, want ≥ 2", res.ReadAmplific)
	}
	if res.Merges == 0 || res.Erases != res.Merges {
		t.Errorf("merges/erases = %d/%d", res.Merges, res.Erases)
	}
	// Log region is 4 of 64 physical pages.
	if res.ReservedSpaceF != 0.0625 {
		t.Errorf("reserved = %v", res.ReservedSpaceF)
	}
	if res.String() == "" {
		t.Error("empty String")
	}
}

func TestIPLMergeCost(t *testing.T) {
	// Hammer a single erase unit: log region (8KB) absorbs 16 sector
	// flushes before each merge.
	tr := trace.New()
	tr.RecordEvict(1, 0, 0, true)
	for i := 0; i < 64; i++ {
		tr.RecordEvict(1, 4, 14, false)
	}
	res := NewSimulator(Config{}).Replay(tr)
	// 64 sector flushes fill the 16-sector log region four times; the
	// merge runs when the NEXT flush finds it full, so 3 merges (the
	// fourth region is full but not yet merged).
	if res.Merges != 3 {
		t.Errorf("merges = %d, want 3", res.Merges)
	}
	// Each merge reads 16 logical pages (64 phys) and writes 15 (60).
	wantReads := res.Merges * 64
	if res.PhysReads != wantReads {
		t.Errorf("reads = %d, want %d", res.PhysReads, wantReads)
	}
}

func TestIPAModelBasics(t *testing.T) {
	tr := synthTrace(2, 64, 2000, []int{3, 4})
	m := NewIPAModel(IPAConfig{Scheme: core.NewScheme(2, 4)}, 64)
	res := m.Replay(tr)
	if res.Fetches != 2000 {
		t.Fatalf("fetches = %d", res.Fetches)
	}
	if res.DeltaWrites == 0 {
		t.Fatal("no delta writes for small updates")
	}
	// RA for IPA stays near 1 (only GC reads add).
	if res.ReadAmplific < 1.0 || res.ReadAmplific > 1.6 {
		t.Errorf("IPA RA = %.2f, want ≈1", res.ReadAmplific)
	}
	if res.WriteAmplific >= 1.0 {
		t.Errorf("IPA WA = %.2f, want < 1 for tiny updates", res.WriteAmplific)
	}
	if res.String() == "" {
		t.Error("empty String")
	}
}

func TestIPAModelBudgetReset(t *testing.T) {
	// One page, N=2: two deltas then an out-of-place write, repeating.
	tr := trace.New()
	tr.RecordEvict(1, 0, 0, true)
	for i := 0; i < 9; i++ {
		tr.RecordEvict(1, 2, 8, false)
	}
	m := NewIPAModel(IPAConfig{Scheme: core.NewScheme(2, 3)}, 1)
	res := m.Replay(tr)
	if res.DeltaWrites != 6 {
		t.Errorf("deltas = %d, want 6", res.DeltaWrites)
	}
	if res.OutOfPlace != 4 { // initial + 3 resets
		t.Errorf("oop = %d, want 4", res.OutOfPlace)
	}
}

func TestIPADisabledScheme(t *testing.T) {
	tr := synthTrace(3, 16, 200, []int{3})
	m := NewIPAModel(IPAConfig{}, 16)
	res := m.Replay(tr)
	if res.DeltaWrites != 0 {
		t.Error("deltas on disabled scheme")
	}
	if res.OutOfPlace != res.Evictions {
		t.Errorf("oop %d != evictions %d", res.OutOfPlace, res.Evictions)
	}
}

// The Table 2 shape: on the same small-update OLTP trace, IPA must beat
// IPL on reads, writes and erases.
func TestIPABeatsIPLOnOLTPTraces(t *testing.T) {
	cases := []struct {
		name   string
		sizes  []int
		scheme core.Scheme
	}{
		{"tpcb-like", []int{4, 4, 4, 4, 4, 4, 4, 8, 8, 20}, core.NewScheme(2, 4)},
		{"tpcc-like", []int{3, 3, 3, 3, 3, 3, 6, 6, 9, 40}, core.NewScheme(2, 3)},
		{"tatp-like", []int{1, 2, 2, 2, 4, 4}, core.NewScheme(2, 4)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := synthTrace(7, 256, 20000, c.sizes)
			iplRes := NewSimulator(Config{}).Replay(tr)
			// Claim 2 (Sec. 2.1): IPL's merge cost is constant no matter
			// how empty the drive is, while IPA can use unused space to
			// amortise garbage collection. The comparison therefore runs
			// the IPA model with the free space a half-full drive offers.
			ipaRes := NewIPAModel(IPAConfig{Scheme: c.scheme, OverProvision: 0.5}, 256).Replay(tr)
			if ipaRes.PhysReads >= iplRes.PhysReads {
				t.Errorf("IPA reads %d ≥ IPL %d", ipaRes.PhysReads, iplRes.PhysReads)
			}
			if ipaRes.PhysWrites >= iplRes.PhysWrites {
				t.Errorf("IPA writes %d ≥ IPL %d", ipaRes.PhysWrites, iplRes.PhysWrites)
			}
			if ipaRes.Erases >= iplRes.Erases {
				t.Errorf("IPA erases %d ≥ IPL %d", ipaRes.Erases, iplRes.Erases)
			}
			// Space: IPA [2×3]/[2×4] ≤ 2%, IPL 6.25%.
			if ipaRes.ReservedSpaceF > 0.025 || iplRes.ReservedSpaceF != 0.0625 {
				t.Errorf("space: ipa %v ipl %v", ipaRes.ReservedSpaceF, iplRes.ReservedSpaceF)
			}
		})
	}
}

func TestTraceSaveLoad(t *testing.T) {
	tr := synthTrace(9, 8, 50, []int{4})
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("len %d != %d", got.Len(), tr.Len())
	}
	a, b := tr.Events(), got.Events()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d: %+v != %+v", i, a[i], b[i])
		}
	}
}
