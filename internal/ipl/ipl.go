// Package ipl implements the In-Page Logging baseline of Lee & Moon
// (SIGMOD'07) in the exact configuration the paper uses for its
// comparison (Sec. 8.3, Appendix B):
//
//   - 8KB logical database pages;
//   - SLC flash with 2KB physical pages, 64 per erase unit, 512B
//     partial writes;
//   - 15 logical pages plus an 8KB log region per erase unit;
//   - one 512B in-memory log sector per logical page;
//   - blocking merges when a log region fills: the whole erase unit
//     (15 pages + log) is read to the host, merged, and written to a
//     fresh erase unit.
//
// The companion IPAModel replays the same trace under In-Place Appends
// with a page-mapped flash and greedy garbage collection, producing the
// read/write amplification and erase counts of Table 2.
package ipl

import (
	"fmt"

	"ipa/internal/core"
	"ipa/internal/trace"
)

// Config fixes the IPL geometry. The zero value selects the paper's
// settings.
type Config struct {
	PhysPagesPerLogical int // 8KB logical / 2KB physical = 4
	LogicalPerEraseUnit int // 15
	LogRegionBytes      int // 8192
	LogSectorBytes      int // 512 (partial-write unit)
	RecordOverhead      int // log-record header bytes per update
}

func (c Config) withDefaults() Config {
	if c.PhysPagesPerLogical == 0 {
		c.PhysPagesPerLogical = 4
	}
	if c.LogicalPerEraseUnit == 0 {
		c.LogicalPerEraseUnit = 15
	}
	if c.LogRegionBytes == 0 {
		c.LogRegionBytes = 8192
	}
	if c.LogSectorBytes == 0 {
		c.LogSectorBytes = 512
	}
	if c.RecordOverhead == 0 {
		c.RecordOverhead = 8
	}
	return c
}

// Result carries the Table 2 metrics.
type Result struct {
	Fetches        int
	Evictions      int
	Merges         int
	SectorFlushes  int // in-memory log sector spills (imlog_full)
	Erases         int
	PhysReads      int // 2KB physical page reads
	PhysWrites     int // 2KB physical page writes (partial writes count 1)
	WriteAmplific  float64
	ReadAmplific   float64
	ReservedSpaceF float64 // fraction of flash reserved (log region)
}

// eraseUnit tracks one IPL erase unit's log region.
type eraseUnit struct {
	logUsed int
}

// Simulator replays a trace under In-Page Logging.
type Simulator struct {
	cfg   Config
	units map[int]*eraseUnit
	// in-memory log sector fill per logical page
	sector map[core.PageID]int
	res    Result
}

// NewSimulator creates an IPL simulator.
func NewSimulator(cfg Config) *Simulator {
	return &Simulator{
		cfg:    cfg.withDefaults(),
		units:  make(map[int]*eraseUnit),
		sector: make(map[core.PageID]int),
	}
}

// unitOf maps a logical page to its erase unit (IPL co-locates a page
// with its log region; placement is static).
func (s *Simulator) unitOf(p core.PageID) *eraseUnit {
	id := int(uint64(p) / uint64(s.cfg.LogicalPerEraseUnit))
	u := s.units[id]
	if u == nil {
		u = &eraseUnit{}
		s.units[id] = u
	}
	return u
}

// Replay consumes the whole trace.
func (s *Simulator) Replay(t *trace.Trace) Result {
	for _, e := range t.Events() {
		switch e.Kind {
		case trace.EvFetch:
			s.fetch(e.Page)
		case trace.EvEvict:
			s.evict(e)
		}
	}
	s.finish()
	return s.res
}

// fetch: the logical page (4 physical pages) plus the erase unit's whole
// log region (another 4) must be read to re-create the current version.
func (s *Simulator) fetch(p core.PageID) {
	s.res.Fetches++
	s.res.PhysReads += 2 * s.cfg.PhysPagesPerLogical
}

// evict: log records for the accumulated changes spill to the log
// region; a full log region forces a blocking merge first.
func (s *Simulator) evict(e trace.Event) {
	s.res.Evictions++
	if e.New {
		// First write of a fresh page: written in place into its unit.
		s.res.PhysWrites += s.cfg.PhysPagesPerLogical
		return
	}
	u := s.unitOf(e.Page)
	bytes := int(e.Gross) + s.cfg.RecordOverhead
	fill := s.sector[e.Page] + bytes
	// Sector spills while filling count as imlog_full flushes; the final
	// (possibly partial) sector flushes because of the eviction itself.
	for fill > s.cfg.LogSectorBytes {
		s.flushSector(u)
		s.res.SectorFlushes++
		fill -= s.cfg.LogSectorBytes
	}
	s.flushSector(u)
	s.sector[e.Page] = 0
	_ = fill
}

// flushSector writes one 512B partial write into the unit's log region,
// merging first if the region is full.
func (s *Simulator) flushSector(u *eraseUnit) {
	if u.logUsed+s.cfg.LogSectorBytes > s.cfg.LogRegionBytes {
		s.merge(u)
	}
	u.logUsed += s.cfg.LogSectorBytes
	s.res.PhysWrites++ // partial write costs one physical write
}

// merge: read the whole erase unit to the host (15 logical pages + log
// region), apply the logs, write the 15 pages to a fresh unit, erase.
func (s *Simulator) merge(u *eraseUnit) {
	s.res.Merges++
	s.res.PhysReads += (s.cfg.LogicalPerEraseUnit + 1) * s.cfg.PhysPagesPerLogical
	s.res.PhysWrites += s.cfg.LogicalPerEraseUnit * s.cfg.PhysPagesPerLogical
	s.res.Erases++
	u.logUsed = 0
}

// finish computes the Appendix B amplification ratios.
func (s *Simulator) finish() {
	c := s.cfg
	if s.res.Evictions > 0 {
		s.res.WriteAmplific = float64(s.res.PhysWrites) / float64(s.res.Evictions*c.PhysPagesPerLogical)
	}
	if s.res.Fetches > 0 {
		s.res.ReadAmplific = float64(s.res.PhysReads) / float64(s.res.Fetches*c.PhysPagesPerLogical)
	}
	total := (c.LogicalPerEraseUnit + 1) * c.PhysPagesPerLogical
	s.res.ReservedSpaceF = float64(c.PhysPagesPerLogical) / float64(total)
}

// String renders the result like a Table 2 column.
func (r Result) String() string {
	return fmt.Sprintf("WA=%.2f RA=%.2f erases=%d merges=%d reads=%d writes=%d",
		r.WriteAmplific, r.ReadAmplific, r.Erases, r.Merges, r.PhysReads, r.PhysWrites)
}
