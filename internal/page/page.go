// Package page implements the paper's revised NSM database page layout
// (Sec. 6.1, Figure 4): a classic slotted page — header, tuple body
// growing upward, slot table growing downward — extended with a reserved
// *delta-record area* at the page tail that absorbs small updates as
// In-Place Appends.
//
// Two views of a page exist:
//
//   - the *physical* image as stored on flash: the body as of the last
//     out-of-place write plus zero or more programmed delta-records in
//     the delta area;
//   - the *logical* image the DBMS operates on: the body with all
//     delta-records applied and the delta area reads as erased (0xFF).
//
// Reconstruct converts physical to logical on fetch; the storage manager
// diffs logical images across flushes to create new delta-records.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ipa/internal/core"
)

// HeaderSize is the fixed page header:
//
//	0:8   page id
//	8:16  PageLSN (little-endian, so the frequently-changing low-order
//	      byte sits at a fixed offset — the paper's observation that only
//	      the least-significant LSN bytes change)
//	16:18 flags
//	18:20 slot count
//	20:22 free-space low watermark (end of tuple body)
//	22:24 delta-record area size (the page is self-describing)
//	24:32 next page id (heap file / index chaining)
//	32:40 owner object id
const HeaderSize = 40

// SlotSize is one slot-table entry: tuple offset and length.
const SlotSize = 4

// Page flags.
const (
	FlagLeaf = 1 << iota // index pages: leaf node
	FlagIndex
)

// Errors of the page layer.
var (
	ErrPageFull   = errors.New("page: not enough free space")
	ErrBadSlot    = errors.New("page: slot out of range or deleted")
	ErrTooSmall   = errors.New("page: page size too small for layout")
	ErrCorrupt    = errors.New("page: corrupt page image")
	ErrTupleLarge = errors.New("page: tuple exceeds page capacity")
)

// Layout fixes the geometry of every page of an object: its size and the
// [N×M] scheme that sizes the delta-record area.
type Layout struct {
	PageSize int
	Scheme   core.Scheme
}

// Validate checks that the layout leaves room for at least one small
// tuple.
func (l Layout) Validate() error {
	if err := l.Scheme.Validate(); err != nil {
		return err
	}
	if l.PageSize > 1<<16 {
		return fmt.Errorf("%w: page size %d exceeds 64KB offset space", ErrTooSmall, l.PageSize)
	}
	if l.BodyCapacity() < 16 {
		return fmt.Errorf("%w: %d bytes (page %d, delta area %d)", ErrTooSmall, l.BodyCapacity(), l.PageSize, l.Scheme.AreaSize())
	}
	return nil
}

// DeltaAreaStart is the page offset where the delta-record area begins.
func (l Layout) DeltaAreaStart() int { return l.PageSize - l.Scheme.AreaSize() }

// DeltaSlotOff returns the page offset of delta-record slot i.
func (l Layout) DeltaSlotOff(i int) int {
	return l.DeltaAreaStart() + i*l.Scheme.RecordSize()
}

// BodyCapacity is the space available to tuples and the slot table.
func (l Layout) BodyCapacity() int { return l.DeltaAreaStart() - HeaderSize }

// Page is a view over a logical page image. The zero value is not usable;
// use Format or Attach.
type Page struct {
	buf []byte
	l   Layout
}

// Format initialises buf as an empty page with the given id. The delta
// area is set to the erased state; tuple space is zeroed.
func Format(buf []byte, l Layout, id core.PageID) (*Page, error) {
	if len(buf) != l.PageSize {
		return nil, fmt.Errorf("%w: buffer %d bytes, layout %d", ErrTooSmall, len(buf), l.PageSize)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	for i := range buf {
		buf[i] = 0
	}
	p := &Page{buf: buf, l: l}
	binary.LittleEndian.PutUint64(buf[0:], uint64(id))
	binary.LittleEndian.PutUint16(buf[20:], HeaderSize) // free space starts after header
	binary.LittleEndian.PutUint16(buf[22:], uint16(l.Scheme.AreaSize()))
	wipeErased(buf[l.DeltaAreaStart():])
	return p, nil
}

// Attach wraps an existing logical page image.
func Attach(buf []byte, l Layout) (*Page, error) {
	if len(buf) != l.PageSize {
		return nil, fmt.Errorf("%w: buffer %d bytes, layout %d", ErrTooSmall, len(buf), l.PageSize)
	}
	p := &Page{buf: buf, l: l}
	if got := int(binary.LittleEndian.Uint16(buf[22:])); got != l.Scheme.AreaSize() {
		return nil, fmt.Errorf("%w: delta area %d on page, layout says %d", ErrCorrupt, got, l.Scheme.AreaSize())
	}
	return p, nil
}

func wipeErased(b []byte) {
	for i := range b {
		b[i] = core.Erased
	}
}

// Buf returns the underlying logical image.
func (p *Page) Buf() []byte { return p.buf }

// Layout returns the page's layout.
func (p *Page) Layout() Layout { return p.l }

// ID returns the page id stored in the header.
func (p *Page) ID() core.PageID {
	return core.PageID(binary.LittleEndian.Uint64(p.buf[0:]))
}

// LSN returns the PageLSN.
func (p *Page) LSN() core.LSN {
	return core.LSN(binary.LittleEndian.Uint64(p.buf[8:]))
}

// SetLSN updates the PageLSN.
func (p *Page) SetLSN(lsn core.LSN) {
	binary.LittleEndian.PutUint64(p.buf[8:], uint64(lsn))
}

// Flags returns the page flags.
func (p *Page) Flags() uint16 { return binary.LittleEndian.Uint16(p.buf[16:]) }

// SetFlags stores the page flags.
func (p *Page) SetFlags(f uint16) { binary.LittleEndian.PutUint16(p.buf[16:], f) }

// SlotCount returns the number of slot-table entries (including deleted).
func (p *Page) SlotCount() int { return int(binary.LittleEndian.Uint16(p.buf[18:])) }

func (p *Page) setSlotCount(n int) { binary.LittleEndian.PutUint16(p.buf[18:], uint16(n)) }

// NextPage returns the chained page id (heap files, index leaves).
func (p *Page) NextPage() core.PageID {
	return core.PageID(binary.LittleEndian.Uint64(p.buf[24:]))
}

// SetNextPage stores the chained page id.
func (p *Page) SetNextPage(id core.PageID) {
	binary.LittleEndian.PutUint64(p.buf[24:], uint64(id))
}

// Owner returns the owning object id.
func (p *Page) Owner() uint64 { return binary.LittleEndian.Uint64(p.buf[32:]) }

// SetOwner stores the owning object id.
func (p *Page) SetOwner(o uint64) { binary.LittleEndian.PutUint64(p.buf[32:], o) }

func (p *Page) freeLow() int { return int(binary.LittleEndian.Uint16(p.buf[20:])) }

func (p *Page) setFreeLow(v int) { binary.LittleEndian.PutUint16(p.buf[20:], uint16(v)) }

// slotTableLow is the page offset of the last (lowest) slot entry.
func (p *Page) slotTableLow() int {
	return p.l.DeltaAreaStart() - SlotSize*p.SlotCount()
}

func (p *Page) slotOff(i int) int {
	return p.l.DeltaAreaStart() - SlotSize*(i+1)
}

func (p *Page) slot(i int) (off, length int) {
	so := p.slotOff(i)
	return int(binary.LittleEndian.Uint16(p.buf[so:])), int(binary.LittleEndian.Uint16(p.buf[so+2:]))
}

func (p *Page) setSlot(i, off, length int) {
	so := p.slotOff(i)
	binary.LittleEndian.PutUint16(p.buf[so:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[so+2:], uint16(length))
}

// FreeSpace returns the bytes available for a new tuple including its
// slot entry (contiguous region between body and slot table).
func (p *Page) FreeSpace() int {
	fs := p.slotTableLow() - p.freeLow()
	if fs < 0 {
		return 0
	}
	return fs
}

// IsMeta classifies a page offset as metadata (header or slot table) for
// the paper's byte-level delta tracking, which separates body pairs (M
// budget) from metadata pairs (V budget).
func (p *Page) IsMeta(off int) bool {
	if off < HeaderSize {
		return true
	}
	return off >= p.slotTableLow() && off < p.l.DeltaAreaStart()
}

// InDeltaArea reports whether an offset lies in the delta-record area
// (always excluded from diffs: the logical image keeps it erased).
func (p *Page) InDeltaArea(off int) bool { return off >= p.l.DeltaAreaStart() }

// ClassRanges appends the page's offset-classification runs to rs and
// returns the result: header and slot table are metadata, the region
// between them is tuple body, and the delta area is skipped. At most four
// ranges are appended, so `var buf [4]core.ClassRange` with
// `p.ClassRanges(buf[:0])` stays allocation-free.
//
// The ranges say exactly what IsMeta and InDeltaArea say — IsMeta(off) is
// "off < HeaderSize or slotTableLow ≤ off < DeltaAreaStart", InDeltaArea
// is "off ≥ DeltaAreaStart" — just as sorted runs instead of predicates,
// which is what core.DiffInto wants. The slot-table boundary depends on
// the page's current SlotCount, so ranges must be re-derived per diff,
// not cached per layout.
func (p *Page) ClassRanges(rs []core.ClassRange) []core.ClassRange {
	stl := p.slotTableLow()
	das := p.l.DeltaAreaStart()
	if stl < HeaderSize {
		stl = HeaderSize // corrupt slot count: keep ranges well-formed
	}
	rs = append(rs, core.ClassRange{Start: 0, End: HeaderSize, Class: core.ClassMeta})
	if stl > HeaderSize {
		rs = append(rs, core.ClassRange{Start: HeaderSize, End: stl, Class: core.ClassBody})
	}
	if das > stl {
		rs = append(rs, core.ClassRange{Start: stl, End: das, Class: core.ClassMeta})
	}
	if p.l.PageSize > das {
		rs = append(rs, core.ClassRange{Start: das, End: p.l.PageSize, Class: core.ClassSkip})
	}
	return rs
}

// Insert stores a tuple and returns its slot number. Deleted slots are
// reused; the body is compacted if fragmented free space suffices.
func (p *Page) Insert(data []byte) (int, error) {
	if len(data) == 0 || len(data) > p.l.BodyCapacity()-SlotSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrTupleLarge, len(data))
	}
	slot := -1
	for i := 0; i < p.SlotCount(); i++ {
		if _, ln := p.slot(i); ln == 0 {
			slot = i
			break
		}
	}
	need := len(data)
	if slot < 0 {
		need += SlotSize
	}
	if p.FreeSpace() < need {
		if p.reclaimable() >= need {
			p.Compact()
		}
		if p.FreeSpace() < need {
			return 0, fmt.Errorf("%w: need %d, free %d", ErrPageFull, need, p.FreeSpace())
		}
	}
	off := p.freeLow()
	copy(p.buf[off:], data)
	p.setFreeLow(off + len(data))
	if slot < 0 {
		slot = p.SlotCount()
		p.setSlotCount(slot + 1)
	}
	p.setSlot(slot, off, len(data))
	return slot, nil
}

// InsertAt places a tuple at a specific slot number — required by
// physiological redo (replay an insert) and undo (reverse a delete),
// where the slot is dictated by the log record rather than chosen freely.
// The slot must be empty; intermediate slots created by extending the
// table remain deleted.
func (p *Page) InsertAt(slot int, data []byte) error {
	if slot < 0 || slot >= 1<<16 {
		return fmt.Errorf("%w: slot %d", ErrBadSlot, slot)
	}
	if len(data) == 0 || len(data) > p.l.BodyCapacity()-SlotSize {
		return fmt.Errorf("%w: %d bytes", ErrTupleLarge, len(data))
	}
	if slot < p.SlotCount() {
		if _, ln := p.slot(slot); ln != 0 {
			return fmt.Errorf("%w: slot %d occupied", ErrBadSlot, slot)
		}
	}
	grow := 0
	if slot >= p.SlotCount() {
		grow = SlotSize * (slot + 1 - p.SlotCount())
	}
	if p.FreeSpace() < len(data)+grow {
		if p.reclaimable() >= len(data)+grow-p.FreeSpace() {
			p.Compact()
		}
		if p.FreeSpace() < len(data)+grow {
			return fmt.Errorf("%w: need %d, free %d", ErrPageFull, len(data)+grow, p.FreeSpace())
		}
	}
	if slot >= p.SlotCount() {
		old := p.SlotCount()
		p.setSlotCount(slot + 1)
		for i := old; i <= slot; i++ {
			p.setSlot(i, 0, 0)
		}
	}
	off := p.freeLow()
	copy(p.buf[off:], data)
	p.setFreeLow(off + len(data))
	p.setSlot(slot, off, len(data))
	return nil
}

// ReadTuple returns a view of the tuple's bytes (valid until the page is
// modified).
func (p *Page) ReadTuple(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.SlotCount() {
		return nil, fmt.Errorf("%w: slot %d of %d", ErrBadSlot, slot, p.SlotCount())
	}
	off, ln := p.slot(slot)
	if ln == 0 {
		return nil, fmt.Errorf("%w: slot %d deleted", ErrBadSlot, slot)
	}
	if off+ln > p.l.DeltaAreaStart() || off < HeaderSize {
		return nil, fmt.Errorf("%w: slot %d points at [%d,%d)", ErrCorrupt, slot, off, off+ln)
	}
	return p.buf[off : off+ln], nil
}

// Update replaces the tuple in slot. Same-length updates are performed
// strictly in place — the property that makes small updates produce small
// deltas. Length-changing updates relocate the tuple within the page.
func (p *Page) Update(slot int, data []byte) error {
	if slot < 0 || slot >= p.SlotCount() {
		return fmt.Errorf("%w: slot %d of %d", ErrBadSlot, slot, p.SlotCount())
	}
	off, ln := p.slot(slot)
	if ln == 0 {
		return fmt.Errorf("%w: slot %d deleted", ErrBadSlot, slot)
	}
	if len(data) == ln {
		copy(p.buf[off:], data)
		return nil
	}
	if len(data) == 0 || len(data) > p.l.BodyCapacity()-SlotSize {
		return fmt.Errorf("%w: %d bytes", ErrTupleLarge, len(data))
	}
	// Relocate: the old copy becomes garbage, so it counts toward the
	// space a compaction can recover. Check before destroying anything.
	if p.FreeSpace() < len(data) {
		if p.FreeSpace()+p.reclaimable()+ln < len(data) {
			return fmt.Errorf("%w: need %d, free %d", ErrPageFull, len(data), p.FreeSpace())
		}
		p.setSlot(slot, 0, 0)
		p.Compact()
	} else {
		p.setSlot(slot, 0, 0)
	}
	noff := p.freeLow()
	copy(p.buf[noff:], data)
	p.setFreeLow(noff + len(data))
	p.setSlot(slot, noff, len(data))
	return nil
}

// Delete marks the slot as deleted; its space becomes reclaimable by
// Compact. Slot numbers of other tuples are stable.
func (p *Page) Delete(slot int) error {
	if slot < 0 || slot >= p.SlotCount() {
		return fmt.Errorf("%w: slot %d of %d", ErrBadSlot, slot, p.SlotCount())
	}
	if _, ln := p.slot(slot); ln == 0 {
		return fmt.Errorf("%w: slot %d already deleted", ErrBadSlot, slot)
	}
	p.setSlot(slot, 0, 0)
	return nil
}

// LiveTuples counts non-deleted slots.
func (p *Page) LiveTuples() int {
	n := 0
	for i := 0; i < p.SlotCount(); i++ {
		if _, ln := p.slot(i); ln != 0 {
			n++
		}
	}
	return n
}

// reclaimable estimates bytes recoverable by compaction.
func (p *Page) reclaimable() int {
	used := 0
	for i := 0; i < p.SlotCount(); i++ {
		_, ln := p.slot(i)
		used += ln
	}
	return (p.freeLow() - HeaderSize) - used
}

// Compact defragments the tuple body, preserving slot numbers.
func (p *Page) Compact() {
	type ent struct{ slot, off, ln int }
	live := make([]ent, 0, p.SlotCount())
	for i := 0; i < p.SlotCount(); i++ {
		off, ln := p.slot(i)
		if ln != 0 {
			live = append(live, ent{i, off, ln})
		}
	}
	// Stable copy in ascending offset order into a scratch region.
	scratch := make([]byte, 0, p.freeLow()-HeaderSize)
	for i := range live {
		for j := i + 1; j < len(live); j++ {
			if live[j].off < live[i].off {
				live[i], live[j] = live[j], live[i]
			}
		}
	}
	newOffs := make([]int, len(live))
	pos := HeaderSize
	for i, e := range live {
		scratch = append(scratch, p.buf[e.off:e.off+e.ln]...)
		newOffs[i] = pos
		pos += e.ln
	}
	copy(p.buf[HeaderSize:], scratch)
	for i := pos; i < p.freeLow(); i++ {
		p.buf[i] = 0
	}
	p.setFreeLow(pos)
	for i, e := range live {
		p.setSlot(e.slot, newOffs[i], e.ln)
	}
}

// UsedDeltaSlots counts the programmed delta-records in a *physical*
// image by scanning control bytes (records are always appended in slot
// order, so the first erased control byte ends the sequence).
func UsedDeltaSlots(raw []byte, l Layout) int {
	if l.Scheme.Disabled() {
		return 0
	}
	used := 0
	for i := 0; i < l.Scheme.N; i++ {
		off := l.DeltaSlotOff(i)
		if off >= len(raw) || raw[off] == core.Erased {
			break
		}
		used++
	}
	return used
}

// Reconstruct converts a physical page image (fresh from flash) into the
// logical image: delta-records are decoded and applied in slot order and
// the delta area is reset to the erased state. It returns the number of
// delta-records that were applied.
func Reconstruct(raw []byte, l Layout) (applied int, err error) {
	if len(raw) != l.PageSize {
		return 0, fmt.Errorf("%w: image %d bytes, layout %d", ErrTooSmall, len(raw), l.PageSize)
	}
	if l.Scheme.Disabled() {
		return 0, nil
	}
	rs := l.Scheme.RecordSize()
	var recs []core.DeltaRecord
	for i := 0; i < l.Scheme.N; i++ {
		off := l.DeltaSlotOff(i)
		slot := raw[off : off+rs]
		rec, present, derr := l.Scheme.Decode(slot)
		if derr != nil {
			return 0, derr
		}
		if !present {
			break
		}
		recs = append(recs, rec)
	}
	for _, rec := range recs {
		if aerr := rec.Apply(raw); aerr != nil {
			return applied, aerr
		}
		applied++
	}
	wipeErased(raw[l.DeltaAreaStart():])
	return applied, nil
}

// EncodeRecords encodes delta-records destined for slots
// [firstSlot, firstSlot+len(recs)) into a contiguous byte run suitable
// for a single write_delta command, returning the page offset of the run.
func EncodeRecords(l Layout, firstSlot int, recs []core.DeltaRecord) (pageOff int, data []byte, err error) {
	if l.Scheme.Disabled() {
		return 0, nil, core.ErrSchemeOverflow
	}
	if firstSlot < 0 || firstSlot+len(recs) > l.Scheme.N {
		return 0, nil, fmt.Errorf("%w: slots [%d,%d) of N=%d", core.ErrSchemeOverflow, firstSlot, firstSlot+len(recs), l.Scheme.N)
	}
	rs := l.Scheme.RecordSize()
	data = make([]byte, rs*len(recs))
	for i, r := range recs {
		if err := l.Scheme.Encode(r, data[i*rs:(i+1)*rs]); err != nil {
			return 0, nil, err
		}
	}
	return l.DeltaSlotOff(firstSlot), data, nil
}
