package page

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ipa/internal/core"
)

var testLayout = Layout{PageSize: 512, Scheme: core.Scheme{N: 2, M: 3, V: 12}}

func newPage(t *testing.T) *Page {
	t.Helper()
	buf := make([]byte, testLayout.PageSize)
	p, err := Format(buf, testLayout, 4711)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLayoutValidate(t *testing.T) {
	if err := testLayout.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Layout{PageSize: 100, Scheme: core.Scheme{N: 2, M: 10, V: 12}}
	if err := bad.Validate(); !errors.Is(err, ErrTooSmall) {
		t.Errorf("tiny page: %v", err)
	}
	huge := Layout{PageSize: 1 << 17, Scheme: core.Scheme{}}
	if err := huge.Validate(); !errors.Is(err, ErrTooSmall) {
		t.Errorf("128KB page: %v", err)
	}
}

func TestLayoutOffsets(t *testing.T) {
	l := testLayout
	if l.Scheme.RecordSize() != 46 {
		t.Fatalf("record size %d", l.Scheme.RecordSize())
	}
	if l.DeltaAreaStart() != 512-92 {
		t.Errorf("DeltaAreaStart = %d", l.DeltaAreaStart())
	}
	if l.DeltaSlotOff(1) != 512-92+46 {
		t.Errorf("DeltaSlotOff(1) = %d", l.DeltaSlotOff(1))
	}
	if l.BodyCapacity() != 512-92-HeaderSize {
		t.Errorf("BodyCapacity = %d", l.BodyCapacity())
	}
}

func TestFormatHeader(t *testing.T) {
	p := newPage(t)
	if p.ID() != 4711 {
		t.Errorf("ID = %d", p.ID())
	}
	if p.LSN() != 0 || p.SlotCount() != 0 || p.NextPage() != 0 {
		t.Error("fresh page header not zeroed")
	}
	for i := p.Layout().DeltaAreaStart(); i < p.Layout().PageSize; i++ {
		if p.Buf()[i] != core.Erased {
			t.Fatal("delta area not erased after Format")
		}
	}
	p.SetLSN(0x1234)
	if p.LSN() != 0x1234 {
		t.Errorf("LSN = %#x", p.LSN())
	}
	p.SetNextPage(99)
	if p.NextPage() != 99 {
		t.Errorf("NextPage = %d", p.NextPage())
	}
	p.SetOwner(7)
	if p.Owner() != 7 {
		t.Errorf("Owner = %d", p.Owner())
	}
	p.SetFlags(FlagIndex | FlagLeaf)
	if p.Flags() != FlagIndex|FlagLeaf {
		t.Errorf("Flags = %#x", p.Flags())
	}
}

func TestLSNLowByteLocality(t *testing.T) {
	// The paper relies on only the least-significant LSN byte changing
	// for nearby LSNs; little-endian encoding at offset 8 provides that.
	p := newPage(t)
	p.SetLSN(0x0100)
	before := append([]byte(nil), p.Buf()[8:16]...)
	p.SetLSN(0x0103)
	changed := 0
	for i, b := range p.Buf()[8:16] {
		if b != before[i] {
			changed++
		}
	}
	if changed != 1 {
		t.Errorf("%d LSN bytes changed, want 1", changed)
	}
}

func TestAttachChecksDeltaArea(t *testing.T) {
	p := newPage(t)
	if _, err := Attach(p.Buf(), testLayout); err != nil {
		t.Fatal(err)
	}
	other := Layout{PageSize: 512, Scheme: core.Scheme{N: 1, M: 3, V: 12}}
	if _, err := Attach(p.Buf(), other); !errors.Is(err, ErrCorrupt) {
		t.Errorf("mismatched layout attach: %v", err)
	}
}

func TestInsertReadUpdateDelete(t *testing.T) {
	p := newPage(t)
	s1, err := p.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Insert([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("duplicate slot")
	}
	got, err := p.ReadTuple(s1)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadTuple = %q, %v", got, err)
	}
	// Same-length update is in place.
	off1, _ := p.slot(s1)
	if err := p.Update(s1, []byte("HELLO")); err != nil {
		t.Fatal(err)
	}
	off2, _ := p.slot(s1)
	if off1 != off2 {
		t.Error("same-length update relocated tuple")
	}
	got, _ = p.ReadTuple(s1)
	if string(got) != "HELLO" {
		t.Errorf("after update: %q", got)
	}
	// Length-changing update relocates but keeps the slot number.
	if err := p.Update(s1, []byte("a longer tuple value")); err != nil {
		t.Fatal(err)
	}
	got, _ = p.ReadTuple(s1)
	if string(got) != "a longer tuple value" {
		t.Errorf("after grow: %q", got)
	}
	got, _ = p.ReadTuple(s2)
	if string(got) != "world!" {
		t.Errorf("neighbour disturbed: %q", got)
	}
	if err := p.Delete(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadTuple(s1); !errors.Is(err, ErrBadSlot) {
		t.Errorf("read deleted: %v", err)
	}
	if err := p.Delete(s1); !errors.Is(err, ErrBadSlot) {
		t.Errorf("double delete: %v", err)
	}
	if p.LiveTuples() != 1 {
		t.Errorf("LiveTuples = %d", p.LiveTuples())
	}
	// Deleted slot is reused.
	s3, err := p.Insert([]byte("reuse"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Errorf("slot %d reused, want %d", s3, s1)
	}
}

func TestInsertUntilFullThenCompact(t *testing.T) {
	p := newPage(t)
	var slots []int
	tuple := bytes.Repeat([]byte{0x42}, 32)
	for {
		s, err := p.Insert(tuple)
		if err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatal(err)
			}
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 5 {
		t.Fatalf("only %d tuples fit", len(slots))
	}
	// Delete every other tuple; inserting a larger tuple must succeed via
	// compaction.
	for i := 0; i < len(slots); i += 2 {
		if err := p.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	big := bytes.Repeat([]byte{0x7}, 60)
	if _, err := p.Insert(big); err != nil {
		t.Fatalf("insert after deletes: %v", err)
	}
	// Remaining odd tuples intact.
	for i := 1; i < len(slots); i += 2 {
		got, err := p.ReadTuple(slots[i])
		if err != nil || !bytes.Equal(got, tuple) {
			t.Fatalf("tuple %d corrupted after compact: %v", slots[i], err)
		}
	}
}

func TestInsertErrors(t *testing.T) {
	p := newPage(t)
	if _, err := p.Insert(nil); !errors.Is(err, ErrTupleLarge) {
		t.Errorf("empty insert: %v", err)
	}
	if _, err := p.Insert(make([]byte, 600)); !errors.Is(err, ErrTupleLarge) {
		t.Errorf("oversized insert: %v", err)
	}
}

func TestIsMetaClassification(t *testing.T) {
	p := newPage(t)
	p.Insert([]byte("abcd"))
	p.Insert([]byte("efgh"))
	if !p.IsMeta(0) || !p.IsMeta(HeaderSize-1) {
		t.Error("header not classified as meta")
	}
	if p.IsMeta(HeaderSize) {
		t.Error("body classified as meta")
	}
	// Slot table: 2 slots above the delta area.
	slotLow := p.Layout().DeltaAreaStart() - 2*SlotSize
	if !p.IsMeta(slotLow) || !p.IsMeta(p.Layout().DeltaAreaStart()-1) {
		t.Error("slot table not classified as meta")
	}
	if p.IsMeta(slotLow - 1) {
		t.Error("free space classified as meta")
	}
	if !p.InDeltaArea(p.Layout().DeltaAreaStart()) || p.InDeltaArea(p.Layout().DeltaAreaStart()-1) {
		t.Error("InDeltaArea boundary wrong")
	}
}

// TestClassRangesMatchClosures proves the diff fast path's range
// classifier agrees with IsMeta/InDeltaArea at every offset, for pages
// with and without tuples (the slot-table boundary moves with SlotCount).
func TestClassRangesMatchClosures(t *testing.T) {
	p := newPage(t)
	check := func(label string) {
		t.Helper()
		var rbuf [4]core.ClassRange
		ranges := p.ClassRanges(rbuf[:0])
		for off := 0; off < p.Layout().PageSize; off++ {
			want := core.ClassBody
			switch {
			case p.InDeltaArea(off):
				want = core.ClassSkip
			case p.IsMeta(off):
				want = core.ClassMeta
			}
			got := core.ClassBody
			for _, r := range ranges {
				if off >= r.Start && off < r.End {
					got = r.Class
					break
				}
			}
			if got != want {
				t.Fatalf("%s: offset %d classified %v, closures say %v", label, off, got, want)
			}
		}
		for i := 1; i < len(ranges); i++ {
			if ranges[i].Start < ranges[i-1].End {
				t.Fatalf("%s: ranges unsorted: %v", label, ranges)
			}
		}
	}
	check("empty page")
	for i := 0; i < 5; i++ {
		if _, err := p.Insert([]byte("tuple-data")); err != nil {
			t.Fatal(err)
		}
		check("after insert")
	}
}

func TestClassRangesZeroAllocs(t *testing.T) {
	p := newPage(t)
	if _, err := p.Insert([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		var rbuf [4]core.ClassRange
		rs := p.ClassRanges(rbuf[:0])
		if len(rs) == 0 {
			t.Fatal("no ranges")
		}
	})
	if allocs != 0 {
		t.Errorf("ClassRanges: %.1f allocs/op, want 0", allocs)
	}
}

func TestReconstructPhysicalImage(t *testing.T) {
	p := newPage(t)
	s, _ := p.Insert([]byte{9, 9, 9, 9})
	flushed := append([]byte(nil), p.Buf()...)

	// Simulate a later modification captured as a delta-record in the
	// physical image.
	tupOff, _ := p.slot(s)
	rec := core.DeltaRecord{
		Body: []core.Pair{{Off: uint16(tupOff), Val: 3}},
		Meta: []core.Pair{{Off: 8, Val: 10}}, // LSN low byte
	}
	off, data, err := EncodeRecords(testLayout, 0, []core.DeltaRecord{rec})
	if err != nil {
		t.Fatal(err)
	}
	physical := append([]byte(nil), flushed...)
	copy(physical[off:], data)
	if UsedDeltaSlots(physical, testLayout) != 1 {
		t.Fatalf("UsedDeltaSlots = %d", UsedDeltaSlots(physical, testLayout))
	}

	applied, err := Reconstruct(physical, testLayout)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Errorf("applied = %d", applied)
	}
	lp, err := Attach(physical, testLayout)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := lp.ReadTuple(s)
	if got[0] != 3 {
		t.Errorf("tuple byte = %d, want 3", got[0])
	}
	if lp.LSN() != 10 {
		t.Errorf("LSN = %d, want 10", lp.LSN())
	}
	for i := testLayout.DeltaAreaStart(); i < testLayout.PageSize; i++ {
		if physical[i] != core.Erased {
			t.Fatal("delta area not wiped after Reconstruct")
		}
	}
}

func TestReconstructAppliesInOrder(t *testing.T) {
	p := newPage(t)
	s, _ := p.Insert([]byte{1})
	tupOff, _ := p.slot(s)
	r1 := core.DeltaRecord{Body: []core.Pair{{Off: uint16(tupOff), Val: 5}}}
	r2 := core.DeltaRecord{Body: []core.Pair{{Off: uint16(tupOff), Val: 7}}}
	off, data, err := EncodeRecords(testLayout, 0, []core.DeltaRecord{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	physical := append([]byte(nil), p.Buf()...)
	copy(physical[off:], data)
	if n := UsedDeltaSlots(physical, testLayout); n != 2 {
		t.Fatalf("UsedDeltaSlots = %d", n)
	}
	if _, err := Reconstruct(physical, testLayout); err != nil {
		t.Fatal(err)
	}
	lp, _ := Attach(physical, testLayout)
	got, _ := lp.ReadTuple(s)
	if got[0] != 7 { // later record wins
		t.Errorf("tuple = %d, want 7", got[0])
	}
}

func TestEncodeRecordsBounds(t *testing.T) {
	rec := core.DeltaRecord{Body: []core.Pair{{Off: 50, Val: 1}}}
	if _, _, err := EncodeRecords(testLayout, 1, []core.DeltaRecord{rec, rec}); err == nil {
		t.Error("slot overflow accepted")
	}
	if _, _, err := EncodeRecords(Layout{PageSize: 512}, 0, []core.DeltaRecord{rec}); err == nil {
		t.Error("disabled scheme accepted")
	}
}

func TestReconstructNoDeltas(t *testing.T) {
	p := newPage(t)
	physical := append([]byte(nil), p.Buf()...)
	applied, err := Reconstruct(physical, testLayout)
	if err != nil || applied != 0 {
		t.Errorf("Reconstruct = (%d, %v)", applied, err)
	}
	if !bytes.Equal(physical, p.Buf()) {
		t.Error("image changed without deltas")
	}
}

func TestReconstructDisabledScheme(t *testing.T) {
	l := Layout{PageSize: 512}
	buf := make([]byte, 512)
	p, err := Format(buf, l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := Reconstruct(p.Buf(), l); err != nil || n != 0 {
		t.Errorf("Reconstruct = (%d, %v)", n, err)
	}
}

// Property: a full cycle — modify page, diff against flushed image, plan
// records, encode into the physical image, reconstruct — always yields
// exactly the modified logical image.
func TestPropertyFullIPACycle(t *testing.T) {
	l := testLayout
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, l.PageSize)
		p, err := Format(buf, l, core.PageID(rng.Intn(1000)+1))
		if err != nil {
			return false
		}
		// A handful of 8-byte tuples.
		nTup := 3 + rng.Intn(5)
		slots := make([]int, nTup)
		for i := range slots {
			tup := make([]byte, 8)
			rng.Read(tup)
			s, err := p.Insert(tup)
			if err != nil {
				return false
			}
			slots[i] = s
		}
		flushed := append([]byte(nil), buf...)

		// Small in-place updates: change ≤ M bytes of one tuple + LSN.
		s := slots[rng.Intn(nTup)]
		tup, _ := p.ReadTuple(s)
		for i := 0; i < 1+rng.Intn(l.Scheme.M); i++ {
			tup[rng.Intn(len(tup))] = byte(rng.Intn(256))
		}
		p.SetLSN(core.LSN(rng.Intn(250)))

		cs, err := core.Diff(buf, flushed, p.IsMeta, p.InDeltaArea)
		if err != nil {
			return false
		}
		recs, err := l.Scheme.Plan(cs, 0)
		if err == core.ErrSchemeOverflow {
			return true // legitimately out-of-place
		}
		if err != nil {
			return false
		}
		if len(recs) == 0 {
			return bytes.Equal(buf, flushed)
		}
		off, data, err := EncodeRecords(l, 0, recs)
		if err != nil {
			return false
		}
		physical := append([]byte(nil), flushed...)
		copy(physical[off:], data)
		if _, err := Reconstruct(physical, l); err != nil {
			return false
		}
		return bytes.Equal(physical, buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: random tuple churn never corrupts other tuples.
func TestPropertyTupleChurn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, testLayout.PageSize)
		p, err := Format(buf, testLayout, 1)
		if err != nil {
			return false
		}
		shadow := map[int][]byte{}
		for op := 0; op < 200; op++ {
			switch rng.Intn(3) {
			case 0: // insert
				tup := make([]byte, 1+rng.Intn(24))
				rng.Read(tup)
				s, err := p.Insert(tup)
				if err == nil {
					shadow[s] = append([]byte(nil), tup...)
				}
			case 1: // update random live slot
				for s := range shadow {
					tup := make([]byte, 1+rng.Intn(24))
					rng.Read(tup)
					if err := p.Update(s, tup); err == nil {
						shadow[s] = append([]byte(nil), tup...)
					}
					break
				}
			case 2: // delete random live slot
				for s := range shadow {
					if err := p.Delete(s); err != nil {
						return false
					}
					delete(shadow, s)
					break
				}
			}
		}
		for s, want := range shadow {
			got, err := p.ReadTuple(s)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
