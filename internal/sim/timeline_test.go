package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestAcquireIdleResource(t *testing.T) {
	tl := NewTimeline(2)
	start, end := tl.Acquire(0, 100, 50)
	if start != 100 || end != 150 {
		t.Errorf("Acquire = (%d,%d), want (100,150)", start, end)
	}
	if tl.BusyUntil(0) != 150 {
		t.Errorf("BusyUntil = %d", tl.BusyUntil(0))
	}
	if tl.BusyUntil(1) != 0 {
		t.Errorf("untouched resource busy until %d", tl.BusyUntil(1))
	}
}

func TestAcquireQueuesBehindBusyResource(t *testing.T) {
	tl := NewTimeline(1)
	tl.Acquire(0, 0, 100)
	start, end := tl.Acquire(0, 10, 20) // issued at 10, resource busy until 100
	if start != 100 || end != 120 {
		t.Errorf("queued Acquire = (%d,%d), want (100,120)", start, end)
	}
}

func TestHorizonTracksLatestCompletion(t *testing.T) {
	tl := NewTimeline(2)
	tl.Acquire(0, 0, 100)
	tl.Acquire(1, 0, 300)
	if tl.Horizon() != 300 {
		t.Errorf("Horizon = %d, want 300", tl.Horizon())
	}
}

func TestWorkerUseAccountsWaiting(t *testing.T) {
	tl := NewTimeline(1)
	w1 := tl.NewWorker()
	w2 := tl.NewWorker()
	if lat := w1.Use(0, 100); lat != 100 {
		t.Errorf("w1 latency = %v, want 100", lat)
	}
	// w2 issues at time 0 but must wait for w1's operation.
	if lat := w2.Use(0, 50); lat != 150 {
		t.Errorf("w2 latency = %v, want 150 (100 wait + 50 service)", lat)
	}
	if w2.Now() != 150 {
		t.Errorf("w2 now = %v", w2.Now())
	}
}

func TestWorkerCompute(t *testing.T) {
	tl := NewTimeline(1)
	w := tl.NewWorker()
	w.Compute(42)
	if w.Now() != 42 {
		t.Errorf("Now = %v", w.Now())
	}
	if tl.Horizon() != 42 {
		t.Errorf("Horizon = %v", tl.Horizon())
	}
}

func TestWorkerUseAsyncDoesNotBlock(t *testing.T) {
	tl := NewTimeline(1)
	w := tl.NewWorker()
	done := w.UseAsync(0, 1000)
	if w.Now() != 0 {
		t.Errorf("async advanced worker clock to %v", w.Now())
	}
	if done != 1000 {
		t.Errorf("completion = %v, want 1000", done)
	}
	// A subsequent synchronous op queues behind the async one.
	if lat := w.Use(0, 10); lat != 1010 {
		t.Errorf("latency behind async = %v, want 1010", lat)
	}
}

func TestSetNowOnlyMovesForward(t *testing.T) {
	tl := NewTimeline(1)
	w := tl.NewWorker()
	w.SetNow(100)
	w.SetNow(50)
	if w.Now() != 100 {
		t.Errorf("Now = %v, want 100", w.Now())
	}
}

func TestTimeSeconds(t *testing.T) {
	if s := Time(2_500_000_000).Seconds(); s != 2.5 {
		t.Errorf("Seconds = %v", s)
	}
}

func TestAcquireOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range resource")
		}
	}()
	NewTimeline(1).Acquire(1, 0, 1)
}

// Property: a resource never runs two operations concurrently — each
// acquisition starts no earlier than the previous one ended.
func TestPropertyNoOverlap(t *testing.T) {
	f := func(durs []uint16, nows []uint16) bool {
		tl := NewTimeline(1)
		var prevEnd Time
		for i, d := range durs {
			var now Time
			if i < len(nows) {
				now = Time(nows[i])
			}
			start, end := tl.Acquire(0, now, time.Duration(d))
			if start < prevEnd {
				return false
			}
			if end != start+Time(d) {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
