// Package sim provides the virtual time base of the flash emulator: a
// discrete-event timeline with per-resource FIFO queueing. I/O latencies
// and transactional throughput in the experiments are derived from this
// simulated time, never from wall-clock time, so every run is
// deterministic and independent of host speed.
//
// The model is the classic trace-driven queueing simulation: each worker
// (database terminal, background cleaner, garbage collector) carries its
// own current time; shared resources (flash chips, channels) remember
// until when they are busy. An operation issued at time t on resource r
// starts at max(t, busy[r]), occupies the resource for its duration, and
// the issuing worker's clock advances to the completion time.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = time.Duration

// Seconds converts a simulated instant to seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (t Time) String() string { return time.Duration(t).String() }

// resource is one busy horizon with its own admission lock, padded so
// adjacent resources never share a cache line: the whole point of
// striping is that 16 chips can admit operations from 16 workers without
// bouncing a shared line between cores.
type resource struct {
	mu   sync.Mutex
	busy Time
	_    [64 - 8 - 8]byte
}

// Timeline tracks the busy horizon of a set of resources. It is safe for
// concurrent use; FIFO admission is serialised *per resource*, so
// operations on different resources (different flash chips) never contend
// with each other. The global horizon is maintained with a lock-free
// atomic max.
type Timeline struct {
	res []resource
	max atomic.Int64
}

// NewTimeline creates a timeline for n resources, all idle at time 0.
func NewTimeline(n int) *Timeline {
	return &Timeline{res: make([]resource, n)}
}

// Resources returns the number of resources managed by the timeline.
func (tl *Timeline) Resources() int { return len(tl.res) }

// advanceMax lifts the horizon to at least t (atomic CAS max).
func (tl *Timeline) advanceMax(t Time) {
	for {
		cur := tl.max.Load()
		if int64(t) <= cur || tl.max.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// Acquire schedules an operation of the given duration on resource r,
// issued by a worker whose clock reads now. It returns the start and
// completion instants; the resource is busy until completion.
func (tl *Timeline) Acquire(r int, now Time, d Duration) (start, end Time) {
	if r < 0 || r >= len(tl.res) {
		panic(fmt.Sprintf("sim: resource %d out of range [0,%d)", r, len(tl.res)))
	}
	res := &tl.res[r]
	res.mu.Lock()
	start = now
	if res.busy > start {
		start = res.busy
	}
	end = start + Time(d)
	res.busy = end
	res.mu.Unlock()
	tl.advanceMax(end)
	return start, end
}

// BusyUntil reports the instant resource r becomes idle.
func (tl *Timeline) BusyUntil(r int) Time {
	res := &tl.res[r]
	res.mu.Lock()
	defer res.mu.Unlock()
	return res.busy
}

// Horizon is the latest completion instant scheduled so far — the total
// simulated elapsed time of the run.
func (tl *Timeline) Horizon() Time {
	return Time(tl.max.Load())
}

// Advance moves the horizon forward without occupying a resource, used to
// account for pure CPU time.
func (tl *Timeline) Advance(t Time) {
	tl.advanceMax(t)
}

// Worker is one logical thread of execution in simulated time (a database
// terminal, a cleaner, the garbage collector). A worker normally belongs
// to a single goroutine, but its clock is mutex-protected so shared
// helper workers (the buffer cleaner, the checkpointer) can be charged
// from whichever goroutine triggers them.
type Worker struct {
	tl  *Timeline
	mu  sync.Mutex
	now Time
}

// NewWorker creates a worker at simulated time 0 on the given timeline.
func (tl *Timeline) NewWorker() *Worker { return &Worker{tl: tl} }

// Now returns the worker's current simulated time.
func (w *Worker) Now() Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.now
}

// SetNow moves the worker's clock (used when a worker logically waits for
// an event completed by another worker, e.g. a read served from buffer).
func (w *Worker) SetNow(t Time) {
	w.mu.Lock()
	if t > w.now {
		w.now = t
	}
	now := w.now
	w.mu.Unlock()
	w.tl.Advance(now)
}

// Compute advances the worker's clock by pure CPU time.
func (w *Worker) Compute(d Duration) {
	w.mu.Lock()
	w.now += Time(d)
	now := w.now
	w.mu.Unlock()
	w.tl.Advance(now)
}

// Use blocks the worker on resource r for duration d (queueing behind
// earlier users) and returns the operation's total latency as observed by
// the worker, i.e. waiting time plus service time.
func (w *Worker) Use(r int, d Duration) Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, end := w.tl.Acquire(r, w.now, d)
	lat := Duration(end - w.now)
	w.now = end
	return lat
}

// UseAsync schedules work on resource r without blocking the worker's
// clock (background writes under a steal/no-force policy do not stall the
// issuing transaction). The returned completion instant can be waited on
// with SetNow by whoever later depends on the result.
func (w *Worker) UseAsync(r int, d Duration) Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, end := w.tl.Acquire(r, w.now, d)
	return end
}
