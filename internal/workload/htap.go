package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/sim"
)

// ScanMode selects how the HTAP driver's analytical scans read.
type ScanMode int

const (
	// ScanModeNone runs pure TPC-B — the scan-free writer baseline.
	ScanModeNone ScanMode = iota
	// ScanModeLocking reads every tuple under the no-wait tuple lock:
	// the pre-MVCC baseline, where a long scan races every writer and
	// one busy tuple aborts the whole read.
	ScanModeLocking
	// ScanModeSnapshot reads through an MVCC snapshot transaction:
	// no locks, no aborts, writers undisturbed.
	ScanModeSnapshot
)

// String names the mode for results and tables.
func (m ScanMode) String() string {
	switch m {
	case ScanModeNone:
		return "none"
	case ScanModeLocking:
		return "locking"
	case ScanModeSnapshot:
		return "snapshot"
	}
	return fmt.Sprintf("ScanMode(%d)", int(m))
}

// HTAP is the hybrid workload for the MVCC experiment: TPC-B
// Account_Update writers with an analytical full-table balance scan
// mixed in (one scan per ScanEvery operations per terminal, drawn
// probabilistically). The scan totals the account, teller and branch
// balances and checks TPC-B's invariant — every committed transaction
// moves all three sums by the same delta — so a completed scan is also
// a consistency audit:
//
//   - locking mode: tuples are read under no-wait locks held to the
//     scan's commit, so a completed scan saw a frozen state (any writer
//     committing mid-scan could only touch tuples the scan had not yet
//     reached, and the scan visits accounts before tellers before
//     branches — the same order writers lock). A busy tuple aborts the
//     scan with ErrLockConflict: the read-path abort the benchmark
//     counts.
//   - snapshot mode: tuples resolve through the version store at the
//     pinned snapshot LSN, which is a committed prefix of history, so
//     the invariant must hold exactly; the scan holds no locks and
//     cannot abort.
type HTAP struct {
	*TPCB

	Mode ScanMode
	// ScanEvery is the expected number of operations per scan per
	// terminal (default 50). Ignored in ScanModeNone.
	ScanEvery int

	accountRIDs []core.RID
	a0, t0, b0  uint64 // balance sums right after Load

	// ScansRun counts completed (committed) balance scans.
	ScansRun atomic.Uint64
}

// NewHTAP wraps a TPC-B driver; Load must be called before RunOne.
func NewHTAP(db *engine.DB, region string, branches, accountsPerBranch int) *HTAP {
	return &HTAP{
		TPCB:      NewTPCB(db, region, branches, accountsPerBranch),
		ScanEvery: 50,
	}
}

// Name implements Workload.
func (h *HTAP) Name() string {
	return fmt.Sprintf("HTAP(%s scans)", h.Mode)
}

// Load populates TPC-B and records the tuple population and the initial
// balance sums the scans verify against.
func (h *HTAP) Load(w *sim.Worker) error {
	if err := h.TPCB.Load(w); err != nil {
		return err
	}
	h.accountRIDs = h.accountRIDs[:0]
	h.a0, h.t0, h.b0 = 0, 0, 0
	if err := h.account.Scan(w, func(rid core.RID, tup []byte) bool {
		h.accountRIDs = append(h.accountRIDs, rid)
		h.a0 += h.schAcct.GetUint(tup, 2)
		return true
	}); err != nil {
		return err
	}
	if err := h.teller.Scan(w, func(_ core.RID, tup []byte) bool {
		h.t0 += h.schCtl.GetUint(tup, 2)
		return true
	}); err != nil {
		return err
	}
	return h.branch.Scan(w, func(_ core.RID, tup []byte) bool {
		h.b0 += h.schCtl.GetUint(tup, 2)
		return true
	})
}

// RunOne implements Workload: mostly Account_Update, with a BalanceScan
// every ~ScanEvery operations when a scan mode is configured.
func (h *HTAP) RunOne(w *sim.Worker, rng *rand.Rand) (string, error) {
	every := h.ScanEvery
	if every <= 0 {
		every = 50
	}
	if h.Mode != ScanModeNone && rng.Intn(every) == 0 {
		return "BalanceScan", h.runScan(w)
	}
	return h.TPCB.RunOne(w, rng)
}

// runScan executes one full balance scan in the configured mode and
// checks the TPC-B sum invariant.
func (h *HTAP) runScan(w *sim.Worker) error {
	var aSum, tSum, bSum uint64
	switch h.Mode {
	case ScanModeLocking:
		tx, err := h.DB.Begin(w)
		if err != nil {
			return err
		}
		// Accounts, then tellers, then branches — the order writers
		// lock, so a completed scan is a consistent cut (see type doc).
		for _, rid := range h.accountRIDs {
			tup, err := h.account.ReadLocked(tx, rid)
			if err != nil {
				tx.Abort()
				return err
			}
			aSum += h.schAcct.GetUint(tup, 2)
		}
		for _, rid := range h.tellerRIDs {
			tup, err := h.teller.ReadLocked(tx, rid)
			if err != nil {
				tx.Abort()
				return err
			}
			tSum += h.schCtl.GetUint(tup, 2)
		}
		for _, rid := range h.branchRIDs {
			tup, err := h.branch.ReadLocked(tx, rid)
			if err != nil {
				tx.Abort()
				return err
			}
			bSum += h.schCtl.GetUint(tup, 2)
		}
		if err := h.checkInvariant(aSum, tSum, bSum); err != nil {
			tx.Abort()
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	case ScanModeSnapshot:
		tx, err := h.DB.BeginSnapshot(w)
		if err != nil {
			return err
		}
		snap := tx.SnapshotLSN()
		for _, s := range []struct {
			tbl *engine.Table
			sch *engine.Schema
			sum *uint64
		}{
			{h.account, h.schAcct, &aSum},
			{h.teller, h.schCtl, &tSum},
			{h.branch, h.schCtl, &bSum},
		} {
			sch, sum := s.sch, s.sum
			if err := s.tbl.ScanSnapshot(tx, func(_ core.RID, tup []byte) bool {
				*sum += sch.GetUint(tup, 2)
				return true
			}); err != nil {
				tx.Abort()
				return err
			}
		}
		if err := h.checkInvariant(aSum, tSum, bSum); err != nil {
			tx.Abort()
			return fmt.Errorf("at snapshot LSN %d: %w", snap, err)
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("htap: no scan mode configured")
	}
	h.ScansRun.Add(1)
	return nil
}

// checkInvariant verifies TPC-B's balance-sum invariant: the three
// tables have moved by the same aggregate delta since Load.
func (h *HTAP) checkInvariant(aSum, tSum, bSum uint64) error {
	da, dt, dbr := aSum-h.a0, tSum-h.t0, bSum-h.b0
	if da != dt || dt != dbr {
		return fmt.Errorf(
			"htap: balance invariant violated: Δaccounts=%d Δtellers=%d Δbranches=%d",
			da, dt, dbr)
	}
	return nil
}
