package workload

import (
	"testing"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/sim"
)

// newHTAPDB is the MVCC-enabled variant of the concurrent-terminal rig.
func newHTAPDB(tb testing.TB, frames, poolShards int) (*engine.DB, *sim.Timeline) {
	tb.Helper()
	g := flash.Geometry{
		Chips: 16, BlocksPerChip: 64, PagesPerBlock: 32,
		PageSize: 1024, OOBSize: 64, Cell: flash.SLC,
	}
	tl := sim.NewTimeline(g.Chips)
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, tl)
	if err != nil {
		tb.Fatal(err)
	}
	dev := noftl.Open(arr)
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "main", Mode: noftl.ModeSLC, Scheme: core.NewScheme(2, 4),
		BlocksPerChip: 64, OverProvision: 0.15,
	}); err != nil {
		tb.Fatal(err)
	}
	db, err := engine.New(dev, engine.Options{
		PageSize: 1024, BufferFrames: frames, Timeline: tl,
		LogCapacity: 1 << 20, LogReclaimThreshold: 0.4,
		PoolShards: poolShards, MVCC: true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return db, tl
}

// runHTAP loads the driver and runs it over parallel terminals.
func runHTAP(t *testing.T, h *HTAP, tl *sim.Timeline, workers, total int) Results {
	t.Helper()
	loader := tl.NewWorker()
	if err := h.Load(loader); err != nil {
		t.Fatal(err)
	}
	terminals := make([]*sim.Worker, workers)
	for i := range terminals {
		terminals[i] = tl.NewWorker()
		terminals[i].SetNow(loader.Now())
	}
	res, err := RunParallel(h, terminals, total, 42)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestHTAPSnapshotConsistency is the MVCC consistency audit, run under
// -race by the tier-1 suite: full-table snapshot scans race Zipfian
// TPC-B writers on real concurrent terminals, and every scan checks the
// balance-sum invariant frozen at its snapshot LSN (a violation is a
// terminal error, failing the run). Snapshot scans must never abort.
func TestHTAPSnapshotConsistency(t *testing.T) {
	db, tl := newHTAPDB(t, 1024, 8)
	defer db.Close()
	h := NewHTAP(db, "main", 4, 250)
	h.Mode = ScanModeSnapshot
	h.ScanEvery = 20
	h.Zipfian = true

	res := runHTAP(t, h, tl, 8, 1200)
	if res.Transactions == 0 {
		t.Fatal("no transactions committed")
	}
	if h.ScansRun.Load() == 0 {
		t.Fatal("no balance scan completed; the audit never ran")
	}
	if n := res.AbortedPerType["BalanceScan"]; n != 0 {
		t.Fatalf("%d snapshot scans aborted; snapshot reads must never abort", n)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.MVCC.Enabled || st.MVCC.SnapshotsStarted == 0 || st.MVCC.SnapshotScans == 0 {
		t.Fatalf("MVCC counters not advancing: %+v", st.MVCC)
	}
	// The store must not leak pinned snapshots after the run.
	if st.MVCC.SnapshotsActive != 0 {
		t.Fatalf("%d snapshots still active after run", st.MVCC.SnapshotsActive)
	}
}

// TestHTAPLockingScanAudit runs the same audit with locking scans: a
// scan that completes held every tuple lock at once, so its sums form a
// consistent cut and the invariant must hold there too; scans that lose
// the no-wait race abort and are counted per type, never fatal.
func TestHTAPLockingScanAudit(t *testing.T) {
	db, tl := newHTAPDB(t, 1024, 8)
	defer db.Close()
	h := NewHTAP(db, "main", 4, 250)
	h.Mode = ScanModeLocking
	h.ScanEvery = 20
	h.Zipfian = true

	res := runHTAP(t, h, tl, 8, 1200)
	if res.Transactions == 0 {
		t.Fatal("no transactions committed")
	}
	scans := h.ScansRun.Load() + res.AbortedPerType["BalanceScan"]
	if scans == 0 {
		t.Fatal("no balance scan attempted")
	}
	if res.Transactions+res.Aborted != 1200 {
		t.Fatalf("committed %d + aborted %d != 1200", res.Transactions, res.Aborted)
	}
}

// TestHTAPSequentialInvariant: single-terminal deterministic run in both
// scan modes — no concurrency, so every scan must complete and verify.
func TestHTAPSequentialInvariant(t *testing.T) {
	for _, mode := range []ScanMode{ScanModeLocking, ScanModeSnapshot} {
		t.Run(mode.String(), func(t *testing.T) {
			db, tl := newHTAPDB(t, 512, 0)
			defer db.Close()
			h := NewHTAP(db, "main", 2, 100)
			h.Mode = mode
			h.ScanEvery = 10
			loader := tl.NewWorker()
			if err := h.Load(loader); err != nil {
				t.Fatal(err)
			}
			w := tl.NewWorker()
			w.SetNow(loader.Now())
			res, err := Run(h, []*sim.Worker{w}, 200, 7)
			if err != nil {
				t.Fatal(err)
			}
			if res.Aborted != 0 {
				t.Fatalf("%d aborts in a single-terminal run", res.Aborted)
			}
			if h.ScansRun.Load() == 0 {
				t.Fatal("no balance scan ran")
			}
		})
	}
}
