package workload

import (
	"math/rand"

	"ipa/internal/client"
)

// ClusterTPCB drives the TPC-B Account_Update transaction against a
// replicated cluster through a leader-following client.Pool. Every
// operation runs inside Pool.Do, so a REDIRECT from a follower or a
// leader crash mid-transaction is absorbed by re-running the whole
// attempt against the new leader — the physical replication keeps RIDs
// identical on every member, so the Init-time RID maps survive
// failovers unchanged.
type ClusterTPCB struct {
	Net *NetTPCB
}

// NewClusterTPCB builds a driver; Init must run before RunOne.
func NewClusterTPCB() *ClusterTPCB {
	return &ClusterTPCB{Net: NewNetTPCB()}
}

// Init scans the TPC-B tables (on whichever member currently leads)
// and builds the id→RID maps.
func (ct *ClusterTPCB) Init(p *client.Pool) error {
	return p.Do(func(c *client.Conn) error {
		return ct.Net.Init(c)
	})
}

// RunOne executes one Account_Update transaction against the current
// leader, following redirects and retrying across failovers. On
// success it returns the history sequence number the server
// acknowledged — once returned with a nil error, that row must survive
// any single node failure. Each retry attempt uses a fresh sequence
// number, so an attempt whose outcome was lost with a dead leader is
// never double-counted as acknowledged.
func (ct *ClusterTPCB) RunOne(p *client.Pool, rng *rand.Rand) (uint64, error) {
	var seq uint64
	err := p.Do(func(c *client.Conn) error {
		s, e := ct.Net.RunOneSeq(c, rng)
		if e == nil {
			seq = s
		}
		return e
	})
	return seq, err
}
