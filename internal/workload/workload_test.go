package workload

import (
	"math/rand"
	"testing"
	"time"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/sim"
)

// newBenchDB builds a timed SLC device and DB sized for small-scale
// workload tests.
func newBenchDB(t *testing.T, scheme core.Scheme, frames int) (*engine.DB, *sim.Timeline) {
	t.Helper()
	g := flash.Geometry{
		Chips: 4, BlocksPerChip: 128, PagesPerBlock: 32,
		PageSize: 1024, OOBSize: 64, Cell: flash.SLC,
	}
	tl := sim.NewTimeline(g.Chips)
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, tl)
	if err != nil {
		t.Fatal(err)
	}
	dev := noftl.Open(arr)
	mode := noftl.ModeSLC
	if scheme.Disabled() {
		mode = noftl.ModeNone
	}
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "main", Mode: mode, Scheme: scheme, BlocksPerChip: 128, OverProvision: 0.15,
	}); err != nil {
		t.Fatal(err)
	}
	db, err := engine.New(dev, engine.Options{
		PageSize: 1024, BufferFrames: frames, Timeline: tl,
		LogCapacity: 1 << 20, LogReclaimThreshold: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, tl
}

func TestTPCBLoadAndRun(t *testing.T) {
	db, tl := newBenchDB(t, core.NewScheme(2, 4), 256)
	b := NewTPCB(db, "main", 2, 500)
	loader := tl.NewWorker()
	if err := b.Load(loader); err != nil {
		t.Fatal(err)
	}
	terminals := []*sim.Worker{tl.NewWorker(), tl.NewWorker()}
	for _, w := range terminals {
		w.SetNow(loader.Now())
	}
	res, err := Run(b, terminals, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 500 || res.Aborted != 0 {
		t.Fatalf("results = %+v", res)
	}
	if res.Throughput <= 0 {
		t.Error("zero throughput")
	}
	if res.PerType["Account_Update"].Count() != 500 {
		t.Error("per-type latency missing")
	}
	// The write profile: flush-time net update sizes concentrate ≤ 8B.
	db.FlushAll(loader)
	st := db.Store("main")
	net := st.Stats().NetBytes
	if net.Count() == 0 {
		t.Fatal("no update-size samples")
	}
	if frac := net.FractionLE(8); frac < 0.5 {
		t.Errorf("only %.0f%% of TPC-B updates ≤ 8 net bytes; paper expects most", 100*frac)
	}
	if st.Stats().FlushesDelta == 0 {
		t.Error("no in-place appends during TPC-B")
	}
}

func TestTPCBBalanceConservation(t *testing.T) {
	db, tl := newBenchDB(t, core.NewScheme(2, 4), 256)
	b := NewTPCB(db, "main", 1, 200)
	w := tl.NewWorker()
	if err := b.Load(w); err != nil {
		t.Fatal(err)
	}
	// Sum of (account+teller+branch) deltas must be 3× the history sum.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		if _, err := b.RunOne(w, rng); err != nil {
			t.Fatal(err)
		}
	}
	var histSum, histCount uint64
	b.history.Scan(w, func(_ core.RID, tup []byte) bool {
		histSum += b.schHist.GetUint(tup, 3)
		histCount++
		return true
	})
	if histCount != 100 {
		t.Fatalf("history rows = %d", histCount)
	}
	var acctSum uint64
	b.account.Scan(w, func(_ core.RID, tup []byte) bool {
		acctSum += b.schAcct.GetUint(tup, 2) - 10_000
		return true
	})
	if acctSum != histSum {
		t.Errorf("account delta %d != history sum %d", acctSum, histSum)
	}
}

func TestTPCCLoadAndRun(t *testing.T) {
	db, tl := newBenchDB(t, core.NewScheme(2, 3), 512)
	c := NewTPCC(db, "main", 1, 400, 60)
	w := tl.NewWorker()
	if err := c.Load(w); err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, []*sim.Worker{w}, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted != 0 {
		t.Fatalf("%d aborted transactions", res.Aborted)
	}
	db.FlushAll(w)
	st := db.Store("main")
	if st.Stats().FlushesDelta == 0 {
		t.Error("no in-place appends during TPC-C")
	}
	// Mix sanity: NewOrder ≈ 45%.
	no := float64(res.PerType["NewOrder"].Count()) / float64(res.Transactions)
	if no < 0.3 || no > 0.6 {
		t.Errorf("NewOrder fraction = %.2f", no)
	}
}

func TestTATPLoadAndRun(t *testing.T) {
	db, tl := newBenchDB(t, core.NewScheme(2, 4), 256)
	ta := NewTATP(db, "main", 2000)
	w := tl.NewWorker()
	if err := ta.Load(w); err != nil {
		t.Fatal(err)
	}
	res, err := Run(ta, []*sim.Worker{w}, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted != 0 {
		t.Fatalf("%d aborted", res.Aborted)
	}
	// Read-dominated: ~80% GetSubscriberData.
	reads := res.PerType["GetSubscriberData"].Count()
	if f := float64(reads) / float64(res.Transactions); f < 0.7 || f > 0.9 {
		t.Errorf("read fraction = %.2f", f)
	}
	db.FlushAll(w)
	net := db.Store("main").Stats().NetBytes
	if net.Count() > 0 && net.FractionLE(8) < 0.5 {
		t.Errorf("TATP updates too large: ≤8B at %.0f%%", 100*net.FractionLE(8))
	}
}

func TestLinkBenchLoadAndRun(t *testing.T) {
	db, tl := newBenchDB(t, core.NewScheme(2, 100), 512)
	lb := NewLinkBench(db, "main", 500, 4)
	w := tl.NewWorker()
	if err := lb.Load(w); err != nil {
		t.Fatal(err)
	}
	res, err := Run(lb, []*sim.Worker{w}, 800, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted != 0 {
		t.Fatalf("%d aborted", res.Aborted)
	}
	db.FlushAll(w)
	st := db.Store("main")
	gross := st.Stats().GrossBytes
	if gross.Count() == 0 {
		t.Fatal("no update-size samples")
	}
	// LinkBench updates are larger than OLTP but most stay under ~200B
	// gross (paper Fig. 10 shape).
	if f := gross.FractionLE(200); f < 0.4 {
		t.Errorf("only %.0f%% of LinkBench updates ≤ 200 gross bytes", 100*f)
	}
	if st.Stats().FlushesDelta == 0 {
		t.Error("no in-place appends with M=100")
	}
}

func TestNURandInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := NURand(rng, 1023, 1, 3000)
		if v < 1 || v > 3000 {
			t.Fatalf("NURand out of range: %d", v)
		}
	}
	// Skew: the distribution must not be uniform (chi-square-ish check on
	// the first decile).
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		v := NURand(rng, 1023, 1, 3000)
		counts[(v-1)*10/3000]++
	}
	max, min := 0, 1<<30
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if float64(max) < 1.2*float64(min) {
		t.Errorf("NURand looks uniform: %v", counts)
	}
}

func TestZipf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := NewZipf(rng, 1.5, 1000)
	lowCount := 0
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		if v < 10 {
			lowCount++
		}
	}
	if lowCount < 5000 {
		t.Errorf("zipf head mass too small: %d/10000", lowCount)
	}
	// s ≤ 1 is clamped instead of panicking.
	_ = NewZipf(rng, 0.5, 100)
}

func TestRunNoTerminals(t *testing.T) {
	if _, err := Run(nil, nil, 10, 1); err == nil {
		t.Error("Run with no terminals accepted")
	}
}

func TestIPAReducesErasesTPCB(t *testing.T) {
	// The headline claim, end-to-end at miniature scale: the same TPC-B
	// run with [2×4] must erase substantially less than [0×0].
	erases := func(scheme core.Scheme) uint64 {
		db, tl := newBenchDB(t, scheme, 96)
		b := NewTPCB(db, "main", 1, 800)
		w := tl.NewWorker()
		if err := b.Load(w); err != nil {
			t.Fatal(err)
		}
		db.Device().Array().ResetStats()
		if _, err := Run(b, []*sim.Worker{w}, 3000, 7); err != nil {
			t.Fatal(err)
		}
		db.FlushAll(w)
		return db.Device().Array().Stats().Erases
	}
	base := erases(core.Scheme{})
	ipa := erases(core.NewScheme(2, 4))
	if base == 0 {
		t.Skip("workload too small to trigger GC")
	}
	if float64(ipa) > 0.8*float64(base) {
		t.Errorf("IPA erases %d not clearly below baseline %d", ipa, base)
	}
}

func TestRunForDuration(t *testing.T) {
	db, tl := newBenchDB(t, core.NewScheme(2, 4), 128)
	b := NewTPCB(db, "main", 1, 400)
	w := tl.NewWorker()
	if err := b.Load(w); err != nil {
		t.Fatal(err)
	}
	res, err := RunForDuration(b, []*sim.Worker{w}, 200*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions == 0 {
		t.Fatal("no transactions in 200ms of simulated time")
	}
	if res.SimSeconds < 0.19 {
		t.Errorf("SimSeconds = %v, want ≥ ~0.2", res.SimSeconds)
	}
	if res.Throughput <= 0 {
		t.Error("zero throughput")
	}
	// A second run for twice the interval executes roughly twice the work.
	res2, err := RunForDuration(b, []*sim.Worker{w}, 400*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Transactions < res.Transactions {
		t.Errorf("longer run did fewer txs: %d < %d", res2.Transactions, res.Transactions)
	}
	if _, err := RunForDuration(b, nil, time.Second, 1); err == nil {
		t.Error("no terminals accepted")
	}
}
