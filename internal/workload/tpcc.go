package workload

import (
	"fmt"
	"math/rand"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/sim"
)

// TPCC implements an order-entry workload with TPC-C's write profile
// (Appendix A.0.2). The STOCK table dominates the write behaviour: each
// NewOrder transaction updates three numeric attributes (S_QUANTITY,
// S_YTD, S_ORDER_CNT/S_REMOTE_CNT) of ~10 random stock rows, changing
// about 3 net bytes per touched page. Payment updates warehouse,
// district and customer balances; 10% of Payments rewrite the customer's
// C_DATA (a large update). Access skew follows the spec's NURand.
type TPCC struct {
	DB     *engine.DB
	Region string

	Warehouses        int
	ItemsPerWarehouse int // spec: 100_000; scaled down for simulation
	CustomersPerDist  int // spec: 3000; scaled down

	warehouse, district, customer, stock *engine.Table
	order, orderLine, history            *engine.Table
	stockIdx, custIdx                    engine.Index

	whRIDs   []core.RID
	distRIDs []core.RID

	schWH    *engine.Schema // wid(4) ytd(8) filler(78)
	schDist  *engine.Schema // did(4) wid(4) nextOID(4) ytd(8) filler(75)
	schCust  *engine.Schema // cid(4) did(4) wid(4) balance(8) ytdPay(8) payCnt(4) data(268)
	schStock *engine.Schema // iid(4) wid(4) qty(4) ytd(8) orderCnt(4) remoteCnt(4) dist(100) filler(72)
	schOrder *engine.Schema // oid(4) did(4) wid(4) cid(4) olCnt(4) time(8)
	schOL    *engine.Schema // oid(4) line(4) iid(4) qty(4) amount(8)
	schHist  *engine.Schema // cid(4) wid(4) amount(8) time(8)
}

// NewTPCC constructs a driver.
func NewTPCC(db *engine.DB, region string, warehouses, itemsPerWH, custPerDist int) *TPCC {
	schWH, _ := engine.NewSchema(4, 8, 78)
	schDist, _ := engine.NewSchema(4, 4, 4, 8, 75)
	schCust, _ := engine.NewSchema(4, 4, 4, 8, 8, 4, 268)
	schStock, _ := engine.NewSchema(4, 4, 4, 8, 4, 4, 100, 72)
	schOrder, _ := engine.NewSchema(4, 4, 4, 4, 4, 8)
	schOL, _ := engine.NewSchema(4, 4, 4, 4, 8)
	schHist, _ := engine.NewSchema(4, 4, 8, 8)
	return &TPCC{
		DB: db, Region: region,
		Warehouses: warehouses, ItemsPerWarehouse: itemsPerWH, CustomersPerDist: custPerDist,
		schWH: schWH, schDist: schDist, schCust: schCust, schStock: schStock,
		schOrder: schOrder, schOL: schOL, schHist: schHist,
	}
}

// Name implements Workload.
func (c *TPCC) Name() string { return "TPC-C" }

func (c *TPCC) stockKey(wid, iid int) uint64 { return uint64(wid)<<32 | uint64(iid) }
func (c *TPCC) custKey(wid, did, cid int) uint64 {
	return uint64(wid)<<40 | uint64(did)<<32 | uint64(cid)
}

// Load creates and populates the schema.
func (c *TPCC) Load(w *sim.Worker) error {
	db := c.DB
	type tbl struct {
		dst  **engine.Table
		name string
	}
	for _, tb := range []tbl{
		{&c.warehouse, "tpcc_warehouse"}, {&c.district, "tpcc_district"},
		{&c.customer, "tpcc_customer"}, {&c.stock, "tpcc_stock"},
		{&c.order, "tpcc_order"}, {&c.orderLine, "tpcc_orderline"},
		{&c.history, "tpcc_history"},
	} {
		t, err := db.CreateTable(tb.name, c.Region)
		if err != nil {
			return err
		}
		*tb.dst = t
	}
	var err error
	if c.stockIdx, err = db.CreateIndex("tpcc_stock_pk", c.Region); err != nil {
		return err
	}
	if c.custIdx, err = db.CreateIndex("tpcc_customer_pk", c.Region); err != nil {
		return err
	}

	for wid := 1; wid <= c.Warehouses; wid++ {
		tup := c.schWH.New()
		c.schWH.SetUint(tup, 0, uint64(wid))
		rid, err := insertRow(db, w, c.warehouse, tup)
		if err != nil {
			return err
		}
		c.whRIDs = append(c.whRIDs, rid)
		for did := 1; did <= 10; did++ {
			dt := c.schDist.New()
			c.schDist.SetUint(dt, 0, uint64(did))
			c.schDist.SetUint(dt, 1, uint64(wid))
			c.schDist.SetUint(dt, 2, 1) // next order id
			drid, err := insertRow(db, w, c.district, dt)
			if err != nil {
				return err
			}
			c.distRIDs = append(c.distRIDs, drid)
		}
		// Customers.
		tx, err := db.Begin(w)
		if err != nil {
			return err
		}
		for did := 1; did <= 10; did++ {
			for cid := 1; cid <= c.CustomersPerDist; cid++ {
				ct := c.schCust.New()
				c.schCust.SetUint(ct, 0, uint64(cid))
				c.schCust.SetUint(ct, 1, uint64(did))
				c.schCust.SetUint(ct, 2, uint64(wid))
				c.schCust.SetUint(ct, 3, 0)
				rid, err := c.customer.Insert(tx, ct)
				if err != nil {
					tx.Abort()
					return err
				}
				if err := c.custIdx.Insert(w, c.custKey(wid, did, cid), rid); err != nil {
					tx.Abort()
					return err
				}
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		// Stock.
		if tx, err = db.Begin(w); err != nil {
			return err
		}
		for iid := 1; iid <= c.ItemsPerWarehouse; iid++ {
			st := c.schStock.New()
			c.schStock.SetUint(st, 0, uint64(iid))
			c.schStock.SetUint(st, 1, uint64(wid))
			c.schStock.SetUint(st, 2, uint64(50+iid%50)) // quantity
			rid, err := c.stock.Insert(tx, st)
			if err != nil {
				tx.Abort()
				return err
			}
			if err := c.stockIdx.Insert(w, c.stockKey(wid, iid), rid); err != nil {
				tx.Abort()
				return err
			}
			if iid%2000 == 1999 {
				if err := tx.Commit(); err != nil {
					return err
				}
				if tx, err = db.Begin(w); err != nil {
					return err
				}
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return db.FlushAll(w)
}

// RunOne executes one transaction of the standard mix.
func (c *TPCC) RunOne(w *sim.Worker, rng *rand.Rand) (string, error) {
	p := rng.Intn(100)
	switch {
	case p < 45:
		return "NewOrder", c.newOrder(w, rng)
	case p < 88:
		return "Payment", c.payment(w, rng)
	case p < 92:
		return "OrderStatus", c.orderStatus(w, rng)
	case p < 96:
		return "Delivery", c.delivery(w, rng)
	default:
		return "StockLevel", c.stockLevel(w, rng)
	}
}

// newOrder: the backbone. Updates district.nextOID, ~10 stock rows
// (3 numeric fields each, small deltas), inserts order + order lines.
func (c *TPCC) newOrder(w *sim.Worker, rng *rand.Rand) error {
	db := c.DB
	wid := rng.Intn(c.Warehouses) + 1
	did := rng.Intn(10) + 1
	distRID := c.distRIDs[(wid-1)*10+did-1]

	tx, err := db.Begin(w)
	if err != nil {
		return err
	}
	// District: D_NEXT_O_ID += 1.
	dt, err := c.district.Read(w, distRID)
	if err != nil {
		tx.Abort()
		return err
	}
	oid := c.schDist.GetUint(dt, 2)
	c.schDist.AddUint(dt, 2, 1)
	if err := c.district.Update(tx, distRID, dt); err != nil {
		tx.Abort()
		return err
	}
	// Order row.
	olCnt := 5 + rng.Intn(11) // 5..15, avg 10
	ot := c.schOrder.New()
	c.schOrder.SetUint(ot, 0, oid)
	c.schOrder.SetUint(ot, 1, uint64(did))
	c.schOrder.SetUint(ot, 2, uint64(wid))
	c.schOrder.SetUint(ot, 4, uint64(olCnt))
	c.schOrder.SetUint(ot, 5, simNow(w))
	if _, err := c.order.Insert(tx, ot); err != nil {
		tx.Abort()
		return err
	}
	for line := 1; line <= olCnt; line++ {
		iid := NURand(rng, 8191, 1, c.ItemsPerWarehouse)
		// 1% remote warehouse accesses.
		swid := wid
		remote := false
		if c.Warehouses > 1 && rng.Intn(100) == 0 {
			swid = rng.Intn(c.Warehouses) + 1
			remote = swid != wid
		}
		srid, ok, err := c.stockIdx.Lookup(w, c.stockKey(swid, iid))
		if err != nil || !ok {
			tx.Abort()
			return fmt.Errorf("tpcc: stock (%d,%d): ok=%v err=%v", swid, iid, ok, err)
		}
		st, err := c.stock.Read(w, srid)
		if err != nil {
			tx.Abort()
			return err
		}
		qty := uint64(rng.Intn(10) + 1)
		// The three numeric updates the paper calls out; deltas < 10 so
		// usually only the least-significant byte of each field changes.
		cur := c.schStock.GetUint(st, 2)
		if cur >= qty+10 {
			c.schStock.SetUint(st, 2, cur-qty)
		} else {
			c.schStock.SetUint(st, 2, cur-qty+91)
		}
		c.schStock.AddUint(st, 3, qty) // S_YTD
		if remote {
			c.schStock.AddUint(st, 5, 1) // S_REMOTE_CNT
		} else {
			c.schStock.AddUint(st, 4, 1) // S_ORDER_CNT
		}
		if err := c.stock.Update(tx, srid, st); err != nil {
			tx.Abort()
			return err
		}
		ol := c.schOL.New()
		c.schOL.SetUint(ol, 0, oid)
		c.schOL.SetUint(ol, 1, uint64(line))
		c.schOL.SetUint(ol, 2, uint64(iid))
		c.schOL.SetUint(ol, 3, qty)
		c.schOL.SetUint(ol, 4, qty*uint64(rng.Intn(9999)+1))
		if _, err := c.orderLine.Insert(tx, ol); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

// payment: warehouse.YTD, district.YTD, customer balance; 10% of
// customers also get C_DATA rewritten (large update).
func (c *TPCC) payment(w *sim.Worker, rng *rand.Rand) error {
	db := c.DB
	wid := rng.Intn(c.Warehouses) + 1
	did := rng.Intn(10) + 1
	cid := NURand(rng, 1023, 1, c.CustomersPerDist)
	amount := uint64(rng.Intn(500000) + 100)

	tx, err := db.Begin(w)
	if err != nil {
		return err
	}
	wt, err := c.warehouse.Read(w, c.whRIDs[wid-1])
	if err != nil {
		tx.Abort()
		return err
	}
	c.schWH.AddUint(wt, 1, amount)
	if err := c.warehouse.Update(tx, c.whRIDs[wid-1], wt); err != nil {
		tx.Abort()
		return err
	}
	distRID := c.distRIDs[(wid-1)*10+did-1]
	dt, err := c.district.Read(w, distRID)
	if err != nil {
		tx.Abort()
		return err
	}
	c.schDist.AddUint(dt, 3, amount)
	if err := c.district.Update(tx, distRID, dt); err != nil {
		tx.Abort()
		return err
	}
	crid, ok, err := c.custIdx.Lookup(w, c.custKey(wid, did, cid))
	if err != nil || !ok {
		tx.Abort()
		return fmt.Errorf("tpcc: customer (%d,%d,%d): ok=%v err=%v", wid, did, cid, ok, err)
	}
	ct, err := c.customer.Read(w, crid)
	if err != nil {
		tx.Abort()
		return err
	}
	c.schCust.AddUint(ct, 3, amount) // balance
	c.schCust.AddUint(ct, 4, amount) // ytd payment
	c.schCust.AddUint(ct, 5, 1)      // payment count
	if rng.Intn(10) == 0 {
		// Bad credit: rewrite C_DATA.
		data := make([]byte, 268)
		rng.Read(data)
		c.schCust.SetBytes(ct, 6, data)
	}
	if err := c.customer.Update(tx, crid, ct); err != nil {
		tx.Abort()
		return err
	}
	h := c.schHist.New()
	c.schHist.SetUint(h, 0, uint64(cid))
	c.schHist.SetUint(h, 1, uint64(wid))
	c.schHist.SetUint(h, 2, amount)
	c.schHist.SetUint(h, 3, simNow(w))
	if _, err := c.history.Insert(tx, h); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// orderStatus: read-only customer + last order probe.
func (c *TPCC) orderStatus(w *sim.Worker, rng *rand.Rand) error {
	wid := rng.Intn(c.Warehouses) + 1
	did := rng.Intn(10) + 1
	cid := NURand(rng, 1023, 1, c.CustomersPerDist)
	crid, ok, err := c.custIdx.Lookup(w, c.custKey(wid, did, cid))
	if err != nil || !ok {
		return fmt.Errorf("tpcc: customer missing: %v", err)
	}
	if _, err := c.customer.Read(w, crid); err != nil {
		return err
	}
	return nil
}

// delivery: update a handful of customer balances (batched carrier run).
func (c *TPCC) delivery(w *sim.Worker, rng *rand.Rand) error {
	db := c.DB
	wid := rng.Intn(c.Warehouses) + 1
	tx, err := db.Begin(w)
	if err != nil {
		return err
	}
	for did := 1; did <= 10; did++ {
		cid := rng.Intn(c.CustomersPerDist) + 1
		crid, ok, err := c.custIdx.Lookup(w, c.custKey(wid, did, cid))
		if err != nil || !ok {
			tx.Abort()
			return fmt.Errorf("tpcc: delivery customer: %v", err)
		}
		ct, err := c.customer.Read(w, crid)
		if err != nil {
			tx.Abort()
			return err
		}
		c.schCust.AddUint(ct, 3, uint64(rng.Intn(5000)+1))
		if err := c.customer.Update(tx, crid, ct); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

// stockLevel: read-only scan of recent stock rows.
func (c *TPCC) stockLevel(w *sim.Worker, rng *rand.Rand) error {
	wid := rng.Intn(c.Warehouses) + 1
	for i := 0; i < 20; i++ {
		iid := rng.Intn(c.ItemsPerWarehouse) + 1
		srid, ok, err := c.stockIdx.Lookup(w, c.stockKey(wid, iid))
		if err != nil || !ok {
			return fmt.Errorf("tpcc: stock-level probe: %v", err)
		}
		if _, err := c.stock.Read(w, srid); err != nil {
			return err
		}
	}
	return nil
}
