package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ipa/internal/engine"
	"ipa/internal/metrics"
	"ipa/internal/sim"
)

// RunParallel executes txTotal transactions spread over the given
// terminal workers, one goroutine per terminal, all hammering the same
// DB. This is the mode the fine-grained engine concurrency exists for:
// simulated chip-level interference is exercised by real concurrent
// workers instead of a round-robin loop. Transactions that lose a
// no-wait tuple-lock race (engine.ErrLockConflict) count as aborts —
// the driver, like a real terminal, retries with its next transaction.
func RunParallel(wl Workload, terminals []*sim.Worker, txTotal int, seed int64) (Results, error) {
	if len(terminals) == 0 {
		return Results{}, fmt.Errorf("workload: no terminals")
	}
	res := Results{
		Workload:  wl.Name(),
		TxLatency: &metrics.Latency{},
		PerType:   make(map[string]*metrics.Latency),
	}
	var start sim.Time
	for i := range terminals {
		if terminals[i].Now() > start {
			start = terminals[i].Now()
		}
	}

	// Per-terminal tallies, merged after the barrier (no lock on the hot
	// path except the shared latency recorders, which are internally
	// synchronised).
	type tally struct {
		committed     uint64
		aborted       uint64
		abortedByType map[string]uint64
	}
	tallies := make([]tally, len(terminals))
	errs := make([]error, len(terminals))
	perTypeMu := sync.Mutex{}
	// One terminal hitting a non-abort error stops the others at their
	// next transaction boundary: the run is doomed, so finishing quotas
	// would only bury the first failure under later noise.
	var stop atomic.Bool

	quota := func(t int) int {
		q := txTotal / len(terminals)
		if t < txTotal%len(terminals) {
			q++
		}
		return q
	}

	var wg sync.WaitGroup
	for t := range terminals {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			w := terminals[t]
			rng := rand.New(rand.NewSource(seed + int64(t)*7919))
			for i := 0; i < quota(t); i++ {
				if stop.Load() {
					return
				}
				before := w.Now()
				w.Compute(TxCPUTime)
				name, err := wl.RunOne(w, rng)
				if err != nil {
					if errors.Is(err, engine.ErrLockConflict) {
						tallies[t].aborted++
						if tallies[t].abortedByType == nil {
							tallies[t].abortedByType = make(map[string]uint64)
						}
						tallies[t].abortedByType[name]++
						continue
					}
					errs[t] = err
					stop.Store(true)
					return
				}
				lat := time.Duration(w.Now() - before)
				tallies[t].committed++
				res.TxLatency.Add(lat)
				perTypeMu.Lock()
				pl := res.PerType[name]
				if pl == nil {
					pl = &metrics.Latency{}
					res.PerType[name] = pl
				}
				perTypeMu.Unlock()
				pl.Add(lat)
			}
		}(t)
	}
	wg.Wait()

	for t := range terminals {
		if errs[t] != nil {
			return res, fmt.Errorf("workload: terminal %d: %w", t, errs[t])
		}
		res.Transactions += tallies[t].committed
		res.Aborted += tallies[t].aborted
		for name, n := range tallies[t].abortedByType {
			if res.AbortedPerType == nil {
				res.AbortedPerType = make(map[string]uint64)
			}
			res.AbortedPerType[name] += n
		}
	}
	var end sim.Time
	for i := range terminals {
		if terminals[i].Now() > end {
			end = terminals[i].Now()
		}
	}
	res.SimSeconds = (end - start).Seconds()
	if res.SimSeconds > 0 {
		res.Throughput = float64(res.Transactions) / res.SimSeconds
	}
	return res, nil
}
