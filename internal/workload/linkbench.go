package workload

import (
	"fmt"
	"math/rand"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/sim"
)

// LinkBench implements the social-graph workload profile of Facebook's
// LinkBench (Appendix A.0.3): node objects with ~90-byte payloads and
// directed associations with ≤12-byte payloads (about half empty). The
// mix is read-intensive (≈2.19:1 read:write); over a third of updates
// change only numeric fields (timestamp, version), the rest change the
// payload size slightly — giving the paper's gross update-size CDF where
// 47–76% of updates modify less than 125 bytes per page.
type LinkBench struct {
	DB     *engine.DB
	Region string

	Nodes         int
	AssocsPerNode int
	// Skew of node access (Zipf-like via power draw).
	Skew float64

	node, assoc *engine.Table
	nodeIdx     engine.Index
	assocIdx    engine.Index // key: src<<24 | seq

	schNode  *engine.Schema // id(8) version(8) time(8) payloadLen(2) payload(96)
	schAssoc *engine.Schema // src(8) dst(8) time(8) version(4) payload(12)

	nextNodeID uint64
}

// NewLinkBench constructs a driver.
func NewLinkBench(db *engine.DB, region string, nodes, assocsPerNode int) *LinkBench {
	schNode, _ := engine.NewSchema(8, 8, 8, 2, 96)
	schAssoc, _ := engine.NewSchema(8, 8, 8, 4, 12)
	return &LinkBench{
		DB: db, Region: region, Nodes: nodes, AssocsPerNode: assocsPerNode,
		Skew: 1.2, schNode: schNode, schAssoc: schAssoc,
	}
}

// Name implements Workload.
func (l *LinkBench) Name() string { return "LinkBench" }

func (l *LinkBench) assocKey(src uint64, seq int) uint64 { return src<<16 | uint64(seq&0xFFFF) }

// Load builds the graph.
func (l *LinkBench) Load(w *sim.Worker) error {
	db := l.DB
	var err error
	if l.node, err = db.CreateTable("lb_node", l.Region); err != nil {
		return err
	}
	if l.assoc, err = db.CreateTable("lb_assoc", l.Region); err != nil {
		return err
	}
	if l.nodeIdx, err = db.CreateIndex("lb_node_pk", l.Region); err != nil {
		return err
	}
	if l.assocIdx, err = db.CreateIndex("lb_assoc_pk", l.Region); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(17))
	tx, err := db.Begin(w)
	if err != nil {
		return err
	}
	for n := 1; n <= l.Nodes; n++ {
		tup := l.schNode.New()
		l.schNode.SetUint(tup, 0, uint64(n))
		l.schNode.SetUint(tup, 1, 1)
		l.schNode.SetUint(tup, 3, uint64(40+rng.Intn(50))) // payload length
		rid, err := l.node.Insert(tx, tup)
		if err != nil {
			tx.Abort()
			return fmt.Errorf("load node %d: %w", n, err)
		}
		if err := l.nodeIdx.Insert(w, uint64(n), rid); err != nil {
			tx.Abort()
			return err
		}
		for a := 0; a < l.AssocsPerNode; a++ {
			at := l.schAssoc.New()
			l.schAssoc.SetUint(at, 0, uint64(n))
			l.schAssoc.SetUint(at, 1, uint64(rng.Intn(l.Nodes)+1))
			l.schAssoc.SetUint(at, 3, 1)
			arid, err := l.assoc.Insert(tx, at)
			if err != nil {
				tx.Abort()
				return err
			}
			if err := l.assocIdx.Insert(w, l.assocKey(uint64(n), a), arid); err != nil {
				tx.Abort()
				return err
			}
		}
		if n%500 == 499 {
			if err := tx.Commit(); err != nil {
				return err
			}
			if tx, err = db.Begin(w); err != nil {
				return err
			}
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	l.nextNodeID = uint64(l.Nodes + 1)
	return db.FlushAll(w)
}

// pickNode draws a node with mild power-law skew.
func (l *LinkBench) pickNode(rng *rand.Rand) uint64 {
	u := rng.Float64()
	// Inverse-power draw: hot head, long tail.
	f := u * u
	return uint64(f*float64(l.Nodes)) + 1
}

// RunOne executes one operation of the LinkBench mix.
func (l *LinkBench) RunOne(w *sim.Worker, rng *rand.Rand) (string, error) {
	p := rng.Intn(100)
	switch {
	case p < 30:
		return "GetNode", l.getNode(w, rng)
	case p < 69:
		return "GetAssocRange", l.getAssocRange(w, rng)
	case p < 84:
		return "UpdateNode", l.updateNode(w, rng)
	case p < 92:
		return "AddAssoc", l.addAssoc(w, rng)
	case p < 98:
		return "UpdateAssoc", l.updateAssoc(w, rng)
	default:
		return "CountAssoc", l.getAssocRange(w, rng)
	}
}

func (l *LinkBench) lookupNode(w *sim.Worker, rng *rand.Rand) (core.RID, uint64, error) {
	id := l.pickNode(rng)
	rid, ok, err := l.nodeIdx.Lookup(w, id)
	if err != nil || !ok {
		return core.RID{}, 0, fmt.Errorf("linkbench: node %d: ok=%v err=%v", id, ok, err)
	}
	return rid, id, nil
}

func (l *LinkBench) getNode(w *sim.Worker, rng *rand.Rand) error {
	rid, _, err := l.lookupNode(w, rng)
	if err != nil {
		return err
	}
	_, err = l.node.Read(w, rid)
	return err
}

func (l *LinkBench) getAssocRange(w *sim.Worker, rng *rand.Rand) error {
	src := l.pickNode(rng)
	lo := l.assocKey(src, 0)
	hi := l.assocKey(src, l.AssocsPerNode)
	count := 0
	return l.assocIdx.Range(w, lo, hi, func(k uint64, rid core.RID) bool {
		if _, err := l.assoc.Read(w, rid); err != nil {
			return false
		}
		count++
		return count < 10
	})
}

// updateNode: ≈35% metadata-only (version+timestamp, ~10 net bytes),
// otherwise payload bytes change too (a slight size change in the
// original, a content rewrite of ~20-90 bytes here).
func (l *LinkBench) updateNode(w *sim.Worker, rng *rand.Rand) error {
	rid, _, err := l.lookupNode(w, rng)
	if err != nil {
		return err
	}
	tx, err := l.DB.Begin(w)
	if err != nil {
		return err
	}
	cur, err := l.node.Read(w, rid)
	if err != nil {
		tx.Abort()
		return err
	}
	l.schNode.AddUint(cur, 1, 1)           // version
	l.schNode.SetUint(cur, 2, simNow(w)|1) // timestamp
	if rng.Intn(100) >= 35 {
		plen := 20 + rng.Intn(70)
		payload := make([]byte, plen)
		rng.Read(payload)
		l.schNode.SetUint(cur, 3, uint64(plen))
		pb := l.schNode.GetBytes(cur, 4)
		copy(pb, payload)
	}
	if err := l.node.Update(tx, rid, cur); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func (l *LinkBench) addAssoc(w *sim.Worker, rng *rand.Rand) error {
	src := l.pickNode(rng)
	tx, err := l.DB.Begin(w)
	if err != nil {
		return err
	}
	at := l.schAssoc.New()
	l.schAssoc.SetUint(at, 0, src)
	l.schAssoc.SetUint(at, 1, uint64(rng.Intn(l.Nodes)+1))
	l.schAssoc.SetUint(at, 2, simNow(w))
	l.schAssoc.SetUint(at, 3, 1)
	if rng.Intn(2) == 0 {
		l.schAssoc.SetBytes(at, 4, []byte("payload12byt"))
	}
	rid, err := l.assoc.Insert(tx, at)
	if err != nil {
		tx.Abort()
		return err
	}
	seq := l.AssocsPerNode + rng.Intn(1<<14)
	if err := l.assocIdx.Insert(w, l.assocKey(src, seq), rid); err != nil {
		// Key collision on the synthetic seq: treat as done.
		if err := tx.Commit(); err != nil {
			return err
		}
		return nil
	}
	return tx.Commit()
}

// updateAssoc: timestamp+version only — a handful of net bytes.
func (l *LinkBench) updateAssoc(w *sim.Worker, rng *rand.Rand) error {
	src := l.pickNode(rng)
	seq := rng.Intn(l.AssocsPerNode)
	rid, ok, err := l.assocIdx.Lookup(w, l.assocKey(src, seq))
	if err != nil {
		return err
	}
	if !ok {
		return nil // assoc was never created for this seq
	}
	tx, err := l.DB.Begin(w)
	if err != nil {
		return err
	}
	cur, err := l.assoc.Read(w, rid)
	if err != nil {
		tx.Abort()
		return err
	}
	l.schAssoc.SetUint(cur, 2, simNow(w)|1)
	l.schAssoc.AddUint(cur, 3, 1)
	if err := l.assoc.Update(tx, rid, cur); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}
