package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"ipa/internal/client"
	"ipa/internal/engine"
	"ipa/internal/wire"
)

// NetTPCB drives the TPC-B Account_Update transaction against an IPA
// server over TCP, using the same tables a local TPCB.Load created
// (the server preloads them; see cmd/ipaserver). The wire protocol has
// no index-lookup op, so Init scans the tables once and builds
// client-side id→RID maps; each transaction then costs two pipelined
// round trips: one for the three balance reads, one for the whole
// BEGIN..COMMIT batch.
//
// The balance updates are server-side ADDFIELD deltas applied under the
// tuple lock, so the read-modify-write is atomic no matter how the
// pre-transaction display reads interleave; concurrent clients hitting
// the same hot row make one of them abort on the no-wait lock
// (StatusLockConflict or StatusTxPoisoned), which RunOne reports as a
// clean abort for the caller to count and retry.
type NetTPCB struct {
	branchRIDs  []wire.RID // index bid-1
	tellerRIDs  []wire.RID // index tid-1
	accountRIDs []wire.RID // index aid-1

	schAcct *engine.Schema
	schCtl  *engine.Schema
	schHist *engine.Schema

	seq atomic.Uint64 // history timestamp surrogate
}

// NewNetTPCB builds a driver; Init must run before RunOne.
func NewNetTPCB() *NetTPCB {
	schAcct, _ := engine.NewSchema(4, 4, 8, 84)
	schCtl, _ := engine.NewSchema(4, 4, 8, 84)
	schHist, _ := engine.NewSchema(4, 4, 4, 8, 8)
	return &NetTPCB{schAcct: schAcct, schCtl: schCtl, schHist: schHist}
}

// Accounts returns the number of accounts discovered by Init.
func (n *NetTPCB) Accounts() int { return len(n.accountRIDs) }

// Init scans the TPC-B tables and builds the id→RID maps.
func (n *NetTPCB) Init(c *client.Conn) error {
	var err error
	if n.branchRIDs, err = n.ridMap(c, "tpcb_branch", n.schCtl); err != nil {
		return err
	}
	if n.tellerRIDs, err = n.ridMap(c, "tpcb_teller", n.schCtl); err != nil {
		return err
	}
	if n.accountRIDs, err = n.ridMap(c, "tpcb_account", n.schAcct); err != nil {
		return err
	}
	if len(n.branchRIDs) == 0 || len(n.tellerRIDs) != 10*len(n.branchRIDs) {
		return fmt.Errorf("tpcbnet: unexpected cardinality: %d branches, %d tellers",
			len(n.branchRIDs), len(n.tellerRIDs))
	}
	return nil
}

// ridMap scans one table and slots each tuple's RID at its primary id.
func (n *NetTPCB) ridMap(c *client.Conn, table string, sch *engine.Schema) ([]wire.RID, error) {
	entries, err := c.Scan(table, 0)
	if err != nil {
		return nil, fmt.Errorf("tpcbnet: scan %s: %w", table, err)
	}
	rids := make([]wire.RID, len(entries))
	for _, e := range entries {
		id := sch.GetUint(e.Data, 0)
		if id == 0 || id > uint64(len(entries)) {
			return nil, fmt.Errorf("tpcbnet: %s: tuple id %d out of range 1..%d",
				table, id, len(entries))
		}
		rids[id-1] = e.RID
	}
	return rids, nil
}

// Aborted reports whether a RunOne error left no trace of the
// transaction server-side, so retrying is safe. LockConflict and
// TxPoisoned mean the server aborted it; Busy means an admission
// rejection hit BEGIN, so it never opened (the server exempts ops on
// open transactions from admission, and RunOne rolls back explicitly
// whenever COMMIT did not resolve the transaction).
func Aborted(err error) bool {
	return wire.IsTransient(err) ||
		errors.Is(err, wire.ErrLockConflict) || errors.Is(err, wire.ErrTxPoisoned)
}

// commitResolved reports whether a COMMIT error still resolved the
// transaction server-side. Any status response means the server
// executed COMMIT (committing or aborting, and closing the handle) —
// except Busy, an admission rejection that skipped the op entirely. A
// non-status error (timeout, connection loss) leaves the outcome
// unknown.
func commitResolved(err error) bool {
	if err == nil {
		return true
	}
	var se *wire.StatusError
	return errors.As(err, &se) && !errors.Is(err, wire.ErrBusy)
}

// RunOne executes one Account_Update transaction: three pipelined
// balance reads (the terminal's display query), then the pipelined
// BEGIN, three 8-byte ADDFIELD deltas (the IPA delta path), one History
// INSERT and the COMMIT.
func (n *NetTPCB) RunOne(c *client.Conn, rng *rand.Rand) error {
	_, err := n.RunOneSeq(c, rng)
	return err
}

// RunOneSeq is RunOne, additionally returning the history sequence
// number the transaction inserted. A nil error means the server
// acknowledged the COMMIT, so that sequence number must survive any
// single failure in a replicated cluster — the failover test's audit
// key.
func (n *NetTPCB) RunOneSeq(c *client.Conn, rng *rand.Rand) (uint64, error) {
	aid := rng.Intn(len(n.accountRIDs))
	tellerIdx := rng.Intn(len(n.tellerRIDs))
	branchIdx := tellerIdx / 10
	delta := uint64(rng.Intn(16_000_000) + 1)

	arid := n.accountRIDs[aid]
	trid := n.tellerRIDs[tellerIdx]
	brid := n.branchRIDs[branchIdx]

	reads := [3]*client.Pending{
		c.ReadAsync("tpcb_account", arid),
		c.ReadAsync("tpcb_teller", trid),
		c.ReadAsync("tpcb_branch", brid),
	}
	var bals [3]uint64
	for i, p := range reads {
		f, err := p.Wait()
		if err != nil {
			return 0, fmt.Errorf("tpcbnet: balance read: %w", err)
		}
		r := wire.NewReader(f.Payload)
		tuple := r.Blob()
		if err := r.Err(); err != nil {
			return 0, err
		}
		sch := n.schCtl
		if i == 0 {
			sch = n.schAcct
		}
		bals[i] = sch.GetUint(tuple, 2)
	}

	seq := n.seq.Add(1)
	h := n.schHist.New()
	n.schHist.SetUint(h, 0, uint64(aid+1))
	n.schHist.SetUint(h, 1, uint64(tellerIdx+1))
	n.schHist.SetUint(h, 2, uint64(branchIdx+1))
	n.schHist.SetUint(h, 3, delta)
	n.schHist.SetUint(h, 4, seq)

	balOff := n.schAcct.Offset(2) // 8 for all three tables
	tx := c.NewTxID()
	pend := [6]*client.Pending{
		c.BeginAsync(tx),
		c.AddFieldAsync(tx, "tpcb_account", arid, balOff, delta),
		c.AddFieldAsync(tx, "tpcb_teller", trid, balOff, delta),
		c.AddFieldAsync(tx, "tpcb_branch", brid, balOff, delta),
		c.InsertAsync(tx, "tpcb_history", h),
		c.CommitAsync(tx),
	}
	var firstErr, commitErr error
	for i, p := range pend {
		_, err := p.Wait()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if i == len(pend)-1 {
			commitErr = err
		}
	}
	if firstErr != nil && !commitResolved(commitErr) {
		// COMMIT never executed (busy rejection, timeout, lost frame):
		// the transaction may still be open server-side, holding no-wait
		// tuple locks that would abort every retry until the connection
		// closes. Roll it back explicitly; TxClosed here just means the
		// server resolved it after all.
		_ = c.Abort(tx)
	}
	return seq, firstErr
}
