package workload

import (
	"fmt"
	"math/rand"

	"ipa/internal/engine"
	"ipa/internal/sim"
)

// TATP implements the Telecom Application Transaction Processing
// benchmark profile: a read-dominated mix (80% reads) over a Subscriber
// table, with tiny updates — UPDATE_SUBSCRIBER_DATA flips a bit field and
// a hex field (2 net bytes), UPDATE_LOCATION rewrites a 4-byte location.
// The paper replays a TATP trace in the IPL comparison (Table 2).
type TATP struct {
	DB     *engine.DB
	Region string

	Subscribers int

	subscriber *engine.Table
	subIdx     engine.Index

	// sid(4) bits(1) hex(1) location(4) msc(8) vlr(8) filler(64)
	sch *engine.Schema
}

// NewTATP constructs a driver.
func NewTATP(db *engine.DB, region string, subscribers int) *TATP {
	sch, _ := engine.NewSchema(4, 1, 1, 4, 8, 8, 64)
	return &TATP{DB: db, Region: region, Subscribers: subscribers, sch: sch}
}

// Name implements Workload.
func (t *TATP) Name() string { return "TATP" }

// Load creates and populates the subscriber table.
func (t *TATP) Load(w *sim.Worker) error {
	db := t.DB
	var err error
	if t.subscriber, err = db.CreateTable("tatp_subscriber", t.Region); err != nil {
		return err
	}
	if t.subIdx, err = db.CreateIndex("tatp_subscriber_pk", t.Region); err != nil {
		return err
	}
	tx, err := db.Begin(w)
	if err != nil {
		return err
	}
	for s := 1; s <= t.Subscribers; s++ {
		tup := t.sch.New()
		t.sch.SetUint(tup, 0, uint64(s))
		t.sch.SetUint(tup, 3, uint64(s*31))
		rid, err := t.subscriber.Insert(tx, tup)
		if err != nil {
			tx.Abort()
			return fmt.Errorf("load subscriber %d: %w", s, err)
		}
		if err := t.subIdx.Insert(w, uint64(s), rid); err != nil {
			tx.Abort()
			return err
		}
		if s%2000 == 1999 {
			if err := tx.Commit(); err != nil {
				return err
			}
			if tx, err = db.Begin(w); err != nil {
				return err
			}
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	return db.FlushAll(w)
}

// RunOne executes one transaction of the TATP mix: 80% reads, 16% tiny
// updates, 4% location updates.
func (t *TATP) RunOne(w *sim.Worker, rng *rand.Rand) (string, error) {
	sid := uint64(rng.Intn(t.Subscribers) + 1)
	rid, ok, err := t.subIdx.Lookup(w, sid)
	if err != nil || !ok {
		return "GetSubscriberData", fmt.Errorf("tatp: subscriber %d: ok=%v err=%v", sid, ok, err)
	}
	p := rng.Intn(100)
	switch {
	case p < 80:
		_, err := t.subscriber.Read(w, rid)
		return "GetSubscriberData", err
	case p < 96:
		// UPDATE_SUBSCRIBER_DATA: bit + hex field, 2 net bytes.
		tx, err := t.DB.Begin(w)
		if err != nil {
			return "UpdateSubscriberData", err
		}
		cur, err := t.subscriber.Read(w, rid)
		if err != nil {
			tx.Abort()
			return "UpdateSubscriberData", err
		}
		t.sch.SetUint(cur, 1, uint64(rng.Intn(2)))
		t.sch.SetUint(cur, 2, uint64(rng.Intn(16)))
		if err := t.subscriber.Update(tx, rid, cur); err != nil {
			tx.Abort()
			return "UpdateSubscriberData", err
		}
		return "UpdateSubscriberData", tx.Commit()
	default:
		// UPDATE_LOCATION: 4-byte location field.
		tx, err := t.DB.Begin(w)
		if err != nil {
			return "UpdateLocation", err
		}
		cur, err := t.subscriber.Read(w, rid)
		if err != nil {
			tx.Abort()
			return "UpdateLocation", err
		}
		t.sch.SetUint(cur, 3, uint64(rng.Uint32()))
		if err := t.subscriber.Update(tx, rid, cur); err != nil {
			tx.Abort()
			return "UpdateLocation", err
		}
		return "UpdateLocation", tx.Commit()
	}
}
