package workload

import (
	"testing"

	"ipa/internal/engine"
	"ipa/internal/sim"
)

func runYCSB(t *testing.T, kind engine.IndexKind, mutate func(*YCSB), terminals, txTotal int) (Results, *YCSB) {
	t.Helper()
	db, tl := newConcurrentDBShards(t, 256, 8)
	y := NewYCSB(db, "main", 500, kind)
	if mutate != nil {
		mutate(y)
	}
	loader := tl.NewWorker()
	if err := y.Load(loader); err != nil {
		t.Fatal(err)
	}
	ws := make([]*sim.Worker, terminals)
	for i := range ws {
		ws[i] = tl.NewWorker()
	}
	res, err := RunParallel(y, ws, txTotal, 11)
	if err != nil {
		t.Fatal(err)
	}
	return res, y
}

func TestYCSBMixes(t *testing.T) {
	for _, kind := range []engine.IndexKind{engine.IndexCoarse, engine.IndexOLC} {
		t.Run(kind.String(), func(t *testing.T) {
			// Mixed 50/50 with some inserts and scans, Zipfian skew,
			// 8 real terminals.
			res, y := runYCSB(t, kind, func(y *YCSB) {
				y.ReadPct, y.UpdatePct, y.InsertPct = 45, 40, 10 // 5% scans
				y.Zipfian = true
			}, 8, 2000)
			// Concurrent Zipfian updates can lose the no-wait lock race;
			// aborts are counted work, not failures.
			if res.Transactions+res.Aborted != 2000 {
				t.Fatalf("committed %d + aborted %d != 2000", res.Transactions, res.Aborted)
			}
			if res.Transactions == 0 {
				t.Fatal("no transaction committed")
			}
			if res.Throughput <= 0 {
				t.Error("no throughput measured")
			}
			for _, op := range []string{"Read", "Update", "Insert", "Scan"} {
				if res.PerType[op] == nil {
					t.Errorf("mix never issued a %s", op)
				}
			}
			st := y.Index().Stats()
			if st.Kind != kind {
				t.Errorf("index kind = %v, want %v", st.Kind, kind)
			}
			if st.Lookups == 0 || st.Inserts == 0 || st.Scans == 0 {
				t.Errorf("index stats did not record the run: %+v", st)
			}
		})
	}
}

func TestYCSBUniformSingleTerminal(t *testing.T) {
	res, _ := runYCSB(t, engine.IndexCoarse, nil, 1, 500)
	if res.Transactions != 500 || res.Aborted != 0 {
		t.Fatalf("committed %d, aborted %d", res.Transactions, res.Aborted)
	}
	if res.PerType["Read"] == nil {
		t.Fatal("default 95/5 mix issued no reads")
	}
}

// TestYCSBSnapshotScanMix: the scan-heavy snapshot mix (read80/scan20
// Zipfian) resolves every scanned tuple through the MVCC version store;
// scans hold no locks, so none of the aborts may come from the scan op.
func TestYCSBSnapshotScanMix(t *testing.T) {
	db, tl := newHTAPDB(t, 256, 8)
	defer db.Close()
	y := NewYCSB(db, "main", 500, engine.IndexOLC)
	y.ReadPct, y.UpdatePct, y.InsertPct = 60, 15, 5 // 20% scans
	y.Zipfian = true
	y.SnapshotScan = true
	loader := tl.NewWorker()
	if err := y.Load(loader); err != nil {
		t.Fatal(err)
	}
	ws := make([]*sim.Worker, 8)
	for i := range ws {
		ws[i] = tl.NewWorker()
		ws[i].SetNow(loader.Now())
	}
	res, err := RunParallel(y, ws, 2000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerType["Scan"] == nil {
		t.Fatal("mix never issued a Scan")
	}
	if n := res.AbortedPerType["Scan"]; n != 0 {
		t.Fatalf("%d snapshot scans aborted", n)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MVCC.SnapshotReads == 0 || st.MVCC.SnapshotsStarted == 0 {
		t.Fatalf("scans did not resolve through the version store: %+v", st.MVCC)
	}
}

func TestYCSBRejectsBadMix(t *testing.T) {
	db, tl := newConcurrentDBShards(t, 64, 0)
	y := NewYCSB(db, "main", 10, engine.IndexCoarse)
	y.ReadPct, y.UpdatePct, y.InsertPct = 80, 30, 10
	if err := y.Load(tl.NewWorker()); err == nil {
		t.Fatal("mix summing past 100 accepted")
	}
}
