package workload

import (
	"fmt"
	"testing"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/sim"
)

// newConcurrentDB builds the 16-chip SLC stack the paper's throughput
// experiments use, sized so TPC-B mostly hits the buffer but the flush
// path still exercises all chips.
func newConcurrentDB(tb testing.TB, frames int) (*engine.DB, *sim.Timeline) {
	tb.Helper()
	g := flash.Geometry{
		Chips: 16, BlocksPerChip: 64, PagesPerBlock: 32,
		PageSize: 1024, OOBSize: 64, Cell: flash.SLC,
	}
	tl := sim.NewTimeline(g.Chips)
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, tl)
	if err != nil {
		tb.Fatal(err)
	}
	dev := noftl.Open(arr)
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "main", Mode: noftl.ModeSLC, Scheme: core.NewScheme(2, 4),
		BlocksPerChip: 64, OverProvision: 0.15,
	}); err != nil {
		tb.Fatal(err)
	}
	db, err := engine.New(dev, engine.Options{
		PageSize: 1024, BufferFrames: frames, Timeline: tl,
		LogCapacity: 1 << 20, LogReclaimThreshold: 0.4,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return db, tl
}

// TestRunParallelTPCB runs real concurrent terminals against one DB and
// checks that committed + aborted covers the requested volume and that
// every abort is a no-wait lock conflict (counted, not fatal).
func TestRunParallelTPCB(t *testing.T) {
	db, tl := newConcurrentDB(t, 256)
	b := NewTPCB(db, "main", 4, 500)
	loader := tl.NewWorker()
	if err := b.Load(loader); err != nil {
		t.Fatal(err)
	}
	const workers, total = 8, 800
	terminals := make([]*sim.Worker, workers)
	for i := range terminals {
		terminals[i] = tl.NewWorker()
		terminals[i].SetNow(loader.Now())
	}
	res, err := RunParallel(b, terminals, total, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions+res.Aborted != total {
		t.Fatalf("committed %d + aborted %d != %d", res.Transactions, res.Aborted, total)
	}
	if res.Transactions == 0 {
		t.Fatal("no transaction committed")
	}
	if res.Throughput <= 0 {
		t.Error("zero throughput")
	}
	// The TPC-B branch table is tiny (4 branches here), so concurrent
	// workers must have produced at least some lock conflicts OR all
	// committed — both are legal; what is illegal is a deadlock, which
	// would have hung the test.
}

// BenchmarkConcurrentTPCB measures committed-transaction throughput (in
// simulated tx/s) as the number of real concurrent workers grows on the
// 16-chip SLC configuration. Throughput must scale with workers until
// the chips saturate — the scaling acceptance test for removing the
// engine-wide mutex. Run with:
//
//	go test -bench ConcurrentTPCB -run xxx ./internal/workload/
func BenchmarkConcurrentTPCB(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			// Buffer-resident working set: scaling should come from the
			// engine (lock table, latches, group commit), not from page
			// misses serialising on the flash chips.
			db, tl := newConcurrentDB(b, 4096)
			wl := NewTPCB(db, "main", 4, 2000)
			loader := tl.NewWorker()
			if err := wl.Load(loader); err != nil {
				b.Fatal(err)
			}
			terminals := make([]*sim.Worker, workers)
			for i := range terminals {
				terminals[i] = tl.NewWorker()
				terminals[i].SetNow(loader.Now())
			}
			b.ResetTimer()
			total := 2000
			if b.N > 1 {
				total = b.N * 100
			}
			res, err := RunParallel(wl, terminals, total, 7)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if res.Transactions == 0 {
				b.Fatal("no transactions committed")
			}
			b.ReportMetric(res.Throughput, "simtx/s")
			b.ReportMetric(float64(res.Aborted), "aborts")
		})
	}
}
