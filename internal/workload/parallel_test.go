package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/sim"
)

// newConcurrentDB builds the 16-chip SLC stack the paper's throughput
// experiments use, sized so TPC-B mostly hits the buffer but the flush
// path still exercises all chips.
func newConcurrentDB(tb testing.TB, frames int) (*engine.DB, *sim.Timeline) {
	return newConcurrentDBShards(tb, frames, 0)
}

// newConcurrentDBShards is newConcurrentDB with an explicit buffer-pool
// shard count (0 = the deterministic single-shard default).
func newConcurrentDBShards(tb testing.TB, frames, poolShards int) (*engine.DB, *sim.Timeline) {
	tb.Helper()
	g := flash.Geometry{
		Chips: 16, BlocksPerChip: 64, PagesPerBlock: 32,
		PageSize: 1024, OOBSize: 64, Cell: flash.SLC,
	}
	tl := sim.NewTimeline(g.Chips)
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, tl)
	if err != nil {
		tb.Fatal(err)
	}
	dev := noftl.Open(arr)
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "main", Mode: noftl.ModeSLC, Scheme: core.NewScheme(2, 4),
		BlocksPerChip: 64, OverProvision: 0.15,
	}); err != nil {
		tb.Fatal(err)
	}
	db, err := engine.New(dev, engine.Options{
		PageSize: 1024, BufferFrames: frames, Timeline: tl,
		LogCapacity: 1 << 20, LogReclaimThreshold: 0.4,
		PoolShards: poolShards,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return db, tl
}

// TestRunParallelTPCB runs real concurrent terminals against one DB and
// checks that committed + aborted covers the requested volume and that
// every abort is a no-wait lock conflict (counted, not fatal).
func TestRunParallelTPCB(t *testing.T) {
	db, tl := newConcurrentDB(t, 256)
	b := NewTPCB(db, "main", 4, 500)
	loader := tl.NewWorker()
	if err := b.Load(loader); err != nil {
		t.Fatal(err)
	}
	const workers, total = 8, 800
	terminals := make([]*sim.Worker, workers)
	for i := range terminals {
		terminals[i] = tl.NewWorker()
		terminals[i].SetNow(loader.Now())
	}
	res, err := RunParallel(b, terminals, total, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions+res.Aborted != total {
		t.Fatalf("committed %d + aborted %d != %d", res.Transactions, res.Aborted, total)
	}
	if res.Transactions == 0 {
		t.Fatal("no transaction committed")
	}
	if res.Throughput <= 0 {
		t.Error("zero throughput")
	}
	// The TPC-B branch table is tiny (4 branches here), so concurrent
	// workers must have produced at least some lock conflicts OR all
	// committed — both are legal; what is illegal is a deadlock, which
	// would have hung the test.
}

// faultyWorkload fails one specific RunOne call with a terminal
// (non-abort) error; every other call succeeds instantly.
type faultyWorkload struct {
	calls  atomic.Int64
	failAt int64
}

var errBoom = errors.New("workload: injected terminal failure")

func (f *faultyWorkload) Name() string             { return "faulty" }
func (f *faultyWorkload) Load(w *sim.Worker) error { return nil }
func (f *faultyWorkload) RunOne(w *sim.Worker, rng *rand.Rand) (string, error) {
	if f.calls.Add(1) == f.failAt {
		return "op", errBoom
	}
	return "op", nil
}

// TestRunParallelErrorPropagation: when one terminal hits a non-abort
// error, RunParallel must surface that error (wrapped, matchable with
// errors.Is) without deadlocking the other terminals — and the early
// stop must keep them from grinding through their full quotas first.
func TestRunParallelErrorPropagation(t *testing.T) {
	const terminals, total, failAt = 8, 80_000, 100
	tl := sim.NewTimeline(1)
	ws := make([]*sim.Worker, terminals)
	for i := range ws {
		ws[i] = tl.NewWorker()
	}
	wl := &faultyWorkload{failAt: failAt}
	res, err := RunParallel(wl, ws, total, 42)
	if err == nil {
		t.Fatal("terminal failure did not surface")
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("error %v does not unwrap to the injected failure", err)
	}
	// Early stop: the healthy terminals bail at their next transaction
	// boundary instead of finishing ~10k transactions each.
	if calls := wl.calls.Load(); calls > failAt+1000 {
		t.Fatalf("ran %d transactions after the failure (early stop broken)", calls)
	}
	// The partial tallies survive for the caller's post-mortem.
	if res.Workload != "faulty" {
		t.Fatalf("results lost: %+v", res)
	}
}

// BenchmarkConcurrentTPCB measures committed-transaction throughput (in
// simulated tx/s) as the number of real concurrent workers grows on the
// 16-chip SLC configuration. Throughput must scale with workers until
// the chips saturate — the scaling acceptance test for removing the
// engine-wide mutex. Run with:
//
//	go test -bench ConcurrentTPCB -run xxx ./internal/workload/
func BenchmarkConcurrentTPCB(b *testing.B) {
	for _, shards := range []int{1, 16} {
		for _, workers := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(b *testing.B) {
				benchConcurrentTPCB(b, shards, workers)
			})
		}
	}
}

func benchConcurrentTPCB(b *testing.B, shards, workers int) {
	// Buffer-resident working set: scaling should come from the
	// engine (lock table, latches, group commit, pool shards), not
	// from page misses serialising on the flash chips.
	db, tl := newConcurrentDBShards(b, 4096, shards)
	wl := NewTPCB(db, "main", 4, 2000)
	loader := tl.NewWorker()
	if err := wl.Load(loader); err != nil {
		b.Fatal(err)
	}
	terminals := make([]*sim.Worker, workers)
	for i := range terminals {
		terminals[i] = tl.NewWorker()
		terminals[i].SetNow(loader.Now())
	}
	// Warmup outside the timer: grow the heap, the WAL ring and the
	// history table to their steady-state footprint so the first count
	// of a -count=N series measures the same regime as the rest (the
	// first run otherwise pays the runtime's heap-growth ramp).
	if _, err := RunParallel(wl, terminals, 5000, 3); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	// One op = 100 *committed* transactions (the unit TPC benchmarks
	// count): no-wait aborts are retried work the config pays for, not
	// throughput it delivers, so a config that aborts more must attempt
	// more inside the timer to finish the same op count.
	total := 2000
	if b.N > 1 {
		total = b.N * 100
	}
	var committed, aborted uint64
	simElapsed := 0.0
	for seed := int64(7); committed < uint64(total); seed++ {
		res, err := RunParallel(wl, terminals, total-int(committed), seed)
		if err != nil {
			b.Fatal(err)
		}
		if res.Transactions == 0 {
			b.Fatal("no transactions committed")
		}
		committed += res.Transactions
		aborted += res.Aborted
		simElapsed += float64(res.Transactions) / res.Throughput
	}
	b.StopTimer()
	b.ReportMetric(float64(committed)/simElapsed, "simtx/s")
	b.ReportMetric(float64(aborted), "aborts")
}
