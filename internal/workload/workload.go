// Package workload provides faithful-profile drivers for the benchmarks
// the paper evaluates: TPC-B, TPC-C, TATP and a LinkBench-style social
// graph workload (Sec. 8.2 / Appendix A). The drivers reproduce the
// schemas, transaction mixes, access skew and — critically — the
// update-size behaviour (which fields of which width change per
// transaction) that the [N×M] scheme exploits.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/metrics"
	"ipa/internal/sim"
)

// Workload is a loadable, runnable benchmark.
type Workload interface {
	// Name of the benchmark ("TPC-B", ...).
	Name() string
	// Load populates the database (run once, before measurement).
	Load(w *sim.Worker) error
	// RunOne executes one transaction of the benchmark mix using the
	// given terminal worker and RNG, returning the transaction type.
	RunOne(w *sim.Worker, rng *rand.Rand) (string, error)
}

// TxCPUTime is the simulated CPU cost charged per transaction, making
// throughput finite when everything hits the buffer pool.
const TxCPUTime = 50 * time.Microsecond

// Results summarises a measured run.
type Results struct {
	Workload     string
	Transactions uint64
	Aborted      uint64
	SimSeconds   float64
	Throughput   float64 // transactions per simulated second
	TxLatency    *metrics.Latency
	PerType      map[string]*metrics.Latency
	// AbortedPerType splits Aborted by the transaction type that lost
	// its no-wait lock race (RunParallel only) — how the HTAP benchmark
	// separates writer aborts from read-path (scan) aborts.
	AbortedPerType map[string]uint64
}

// RunForDuration executes transactions round-robin until every
// terminal's simulated clock has advanced by at least dur — the paper's
// measurement mode: a fixed wall-clock interval, so faster configurations
// execute *more* transactions (and issue more host I/Os), exactly how
// Tables 6-10 report throughput next to absolute I/O counts.
func RunForDuration(wl Workload, terminals []*sim.Worker, dur time.Duration, seed int64) (Results, error) {
	if len(terminals) == 0 {
		return Results{}, fmt.Errorf("workload: no terminals")
	}
	res := Results{
		Workload:  wl.Name(),
		TxLatency: &metrics.Latency{},
		PerType:   make(map[string]*metrics.Latency),
	}
	rngs := make([]*rand.Rand, len(terminals))
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(seed + int64(i)*7919))
	}
	var start sim.Time
	for i := range terminals {
		if terminals[i].Now() > start {
			start = terminals[i].Now()
		}
	}
	deadline := start + sim.Time(dur)
	const hardCap = 10_000_000 // runaway guard
	for i := 0; i < hardCap; i++ {
		t := i % len(terminals)
		w := terminals[t]
		if w.Now() >= deadline {
			done := true
			for _, o := range terminals {
				if o.Now() < deadline {
					done = false
					break
				}
			}
			if done {
				break
			}
			continue
		}
		before := w.Now()
		w.Compute(TxCPUTime)
		name, err := wl.RunOne(w, rngs[t])
		if err != nil {
			res.Aborted++
			continue
		}
		lat := time.Duration(w.Now() - before)
		res.Transactions++
		res.TxLatency.Add(lat)
		pl := res.PerType[name]
		if pl == nil {
			pl = &metrics.Latency{}
			res.PerType[name] = pl
		}
		pl.Add(lat)
	}
	var end sim.Time
	for i := range terminals {
		if terminals[i].Now() > end {
			end = terminals[i].Now()
		}
	}
	res.SimSeconds = (end - start).Seconds()
	if res.SimSeconds > 0 {
		res.Throughput = float64(res.Transactions) / res.SimSeconds
	}
	return res, nil
}

// Run executes txTotal transactions spread over the given terminal
// workers, round-robin, measuring simulated latency per transaction.
// Terminals interleave in simulated time through chip queueing even
// though execution here is sequential and deterministic.
func Run(wl Workload, terminals []*sim.Worker, txTotal int, seed int64) (Results, error) {
	if len(terminals) == 0 {
		return Results{}, fmt.Errorf("workload: no terminals")
	}
	res := Results{
		Workload:  wl.Name(),
		TxLatency: &metrics.Latency{},
		PerType:   make(map[string]*metrics.Latency),
	}
	rngs := make([]*rand.Rand, len(terminals))
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(seed + int64(i)*7919))
	}
	var start sim.Time
	for i := range terminals {
		if terminals[i].Now() > start {
			start = terminals[i].Now()
		}
	}
	for i := 0; i < txTotal; i++ {
		t := i % len(terminals)
		w := terminals[t]
		before := w.Now()
		w.Compute(TxCPUTime)
		name, err := wl.RunOne(w, rngs[t])
		if err != nil {
			res.Aborted++
			continue
		}
		lat := time.Duration(w.Now() - before)
		res.Transactions++
		res.TxLatency.Add(lat)
		pl := res.PerType[name]
		if pl == nil {
			pl = &metrics.Latency{}
			res.PerType[name] = pl
		}
		pl.Add(lat)
	}
	var end sim.Time
	for i := range terminals {
		if terminals[i].Now() > end {
			end = terminals[i].Now()
		}
	}
	res.SimSeconds = (end - start).Seconds()
	if res.SimSeconds > 0 {
		res.Throughput = float64(res.Transactions) / res.SimSeconds
	}
	return res, nil
}

// NURand is TPC-C's non-uniform random function NURand(A, x, y).
func NURand(rng *rand.Rand, a, x, y int) int {
	c := a / 2
	return (((rng.Intn(a+1) | (x + rng.Intn(y-x+1))) + c) % (y - x + 1)) + x
}

// Zipf draws from [0, n) with the given skew (s > 1 steeper).
type Zipf struct{ z *rand.Zipf }

// NewZipf builds a Zipf generator over [0, n).
func NewZipf(rng *rand.Rand, s float64, n uint64) *Zipf {
	if s <= 1 {
		s = 1.01
	}
	return &Zipf{z: rand.NewZipf(rng, s, 1, n-1)}
}

// Next draws a value.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// simNow returns the worker's simulated clock (0 for untimed runs).
func simNow(w *sim.Worker) uint64 {
	if w == nil {
		return 0
	}
	return uint64(w.Now())
}

// insertRow is a helper: single-tuple insert in its own transaction
// during load phases.
func insertRow(db *engine.DB, w *sim.Worker, t *engine.Table, tup []byte) (core.RID, error) {
	tx, err := db.Begin(w)
	if err != nil {
		return core.RID{}, err
	}
	r, err := t.Insert(tx, tup)
	if err != nil {
		tx.Abort()
		return core.RID{}, err
	}
	if err := tx.Commit(); err != nil {
		return core.RID{}, err
	}
	return r, nil
}
