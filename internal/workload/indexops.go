package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/sim"
)

// IndexOpsConfig describes one run of the bare-index microbenchmark:
// point lookups against scattered fresh-key inserts over a preloaded
// tree, no tables, transactions or WAL in the way. It is the
// measurement harness behind BenchmarkIndexOps and the "index"
// experiment table.
type IndexOpsConfig struct {
	Kind    engine.IndexKind
	ReadPct int // lookup percentage; the rest are inserts
	Workers int // simulated workers round-robined over
	Preload int // keys loaded before the measured phase
	Ops     int // measured operations
	Seed    int64
	// Name names the index; distinct runs against one DB need distinct
	// names (default "ixops").
	Name string
}

// IndexOpsResult is one run's measurement.
type IndexOpsResult struct {
	// SimTime is the simulated makespan of the measured phase: the
	// latest worker clock minus the common start, the same convention
	// RunParallel uses. (The global horizon would also count background
	// cleaner writes, which are async under steal/no-force and identical
	// for both trees.)
	SimTime time.Duration
	// Before and After bracket the index's counters around the measured
	// phase; After-Before restarts and latch waits are the OLC
	// contention telemetry.
	Before, After engine.IndexStats
}

// RunIndexOps preloads an index of cfg.Kind and drives cfg.Ops
// operations through it under the simulated latch-cost model: the
// coarse tree pays the tree-wide latchSim horizon, the OLC tree runs
// horizon-free and surfaces its residual cost as restart/latch-wait
// counters. Workers are virtual: one goroutine round-robins the
// operations over cfg.Workers simulated clocks, so the interleaving is
// the ideal schedule and the run is deterministic for a given seed.
// Real-goroutine contention is covered by the YCSB driver and the
// engine's -race stress tests.
func RunIndexOps(db *engine.DB, tl *sim.Timeline, region string, cfg IndexOpsConfig) (IndexOpsResult, error) {
	var res IndexOpsResult
	if cfg.Workers < 1 || cfg.Preload < 1 || cfg.Ops < 0 {
		return res, fmt.Errorf("workload: index ops config %+v invalid", cfg)
	}
	if cfg.ReadPct < 0 || cfg.ReadPct > 100 {
		return res, fmt.Errorf("workload: read pct %d out of range", cfg.ReadPct)
	}
	name := cfg.Name
	if name == "" {
		name = "ixops"
	}
	ix, err := db.CreateIndexKind(name, region, cfg.Kind)
	if err != nil {
		return res, err
	}
	loader := tl.NewWorker()
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, k := range rng.Perm(cfg.Preload) {
		if err := ix.Insert(loader, uint64(k)+1, core.RID{Page: core.PageID(k + 1)}); err != nil {
			return res, err
		}
	}
	var latch *latchSim
	if cfg.Kind == engine.IndexCoarse {
		latch = &latchSim{}
	}
	start := tl.Horizon()
	ws := make([]*sim.Worker, cfg.Workers)
	for i := range ws {
		ws[i] = tl.NewWorker()
		ws[i].SetNow(start)
	}
	res.Before = ix.Stats()
	opRNG := rand.New(rand.NewSource(cfg.Seed + 97))
	for i := 0; i < cfg.Ops; i++ {
		w := ws[i%cfg.Workers]
		if opRNG.Intn(100) < cfg.ReadPct {
			if latch != nil {
				latch.enterShared(w)
			}
			w.Compute(IndexOpCPU)
			_, _, err := ix.Lookup(w, uint64(opRNG.Intn(cfg.Preload)+1))
			if latch != nil {
				latch.exitShared(w)
			}
			if err != nil {
				return res, err
			}
		} else {
			if latch != nil {
				latch.enterExcl(w)
			}
			w.Compute(IndexOpCPU)
			// Scattered fresh keys: writers land on random leaves
			// instead of one hot edge.
			k := uint64(cfg.Preload) + 1 + uint64(opRNG.Int63n(1<<40))
			err := ix.Insert(w, k, core.RID{Page: 1})
			if latch != nil {
				latch.exitExcl(w)
			}
			if err != nil && !errors.Is(err, engine.ErrKeyExists) {
				return res, err
			}
		}
	}
	var end sim.Time
	for _, w := range ws {
		if w.Now() > end {
			end = w.Now()
		}
	}
	res.SimTime = time.Duration(end - start)
	res.After = ix.Stats()
	return res, nil
}
