package workload

import (
	"fmt"
	"math/rand"
	"sync"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/sim"
)

// TPCB implements the TPC-B banking benchmark (Appendix A.0.1): one
// Account_Update transaction that modifies a numeric balance (4 bytes
// net) in each of Branch, Teller and Account, and appends a History row
// (~20 bytes net). The 1:10:AccountsPerBranch cardinality and the random
// account access give the paper's update-size profile: 50–90% of update
// I/Os change exactly 4 bytes of net data.
type TPCB struct {
	DB *engine.DB
	// Region for each table; AccountRegion may differ to exercise
	// selective IPA ("3 from 4 tables in TPC-B").
	Region string

	Branches          int
	AccountsPerBranch int

	// Zipfian skews the account choice (ZipfS steepness, default 1.1
	// when zero) instead of TPC-B's uniform draw — the hot-account
	// contention the HTAP benchmark uses to provoke no-wait aborts.
	Zipfian bool
	ZipfS   float64

	branch, teller, account, history *engine.Table
	accountIdx                       engine.Index

	branchRIDs []core.RID
	tellerRIDs []core.RID

	schAcct *engine.Schema // aid(4) bid(4) balance(8) filler(84)
	schCtl  *engine.Schema // id(4) bid(4) balance(8) filler(84)
	schHist *engine.Schema // aid(4) tid(4) bid(4) delta(8) time(8)

	// zipfs caches one Zipf generator per terminal RNG (rand.Zipf is
	// not safe for concurrent use; seeding from the terminal's rng keeps
	// runs deterministic per terminal).
	zipfs sync.Map // *rand.Rand -> *Zipf
}

// NewTPCB constructs a driver; Load must be called before RunOne.
func NewTPCB(db *engine.DB, region string, branches, accountsPerBranch int) *TPCB {
	schAcct, _ := engine.NewSchema(4, 4, 8, 84)
	schCtl, _ := engine.NewSchema(4, 4, 8, 84)
	schHist, _ := engine.NewSchema(4, 4, 4, 8, 8)
	return &TPCB{
		DB: db, Region: region,
		Branches: branches, AccountsPerBranch: accountsPerBranch,
		schAcct: schAcct, schCtl: schCtl, schHist: schHist,
	}
}

// Name implements Workload.
func (b *TPCB) Name() string { return "TPC-B" }

// Accounts returns the total number of accounts.
func (b *TPCB) Accounts() int { return b.Branches * b.AccountsPerBranch }

// Load creates and populates the four tables.
func (b *TPCB) Load(w *sim.Worker) error {
	db := b.DB
	var err error
	if b.branch, err = db.CreateTable("tpcb_branch", b.Region); err != nil {
		return err
	}
	if b.teller, err = db.CreateTable("tpcb_teller", b.Region); err != nil {
		return err
	}
	if b.account, err = db.CreateTable("tpcb_account", b.Region); err != nil {
		return err
	}
	if b.history, err = db.CreateTable("tpcb_history", b.Region); err != nil {
		return err
	}
	if b.accountIdx, err = db.CreateIndex("tpcb_account_pk", b.Region); err != nil {
		return err
	}
	for i := 0; i < b.Branches; i++ {
		tup := b.schCtl.New()
		b.schCtl.SetUint(tup, 0, uint64(i+1))
		b.schCtl.SetUint(tup, 2, 1_000_000)
		rid, err := insertRow(db, w, b.branch, tup)
		if err != nil {
			return fmt.Errorf("load branch %d: %w", i, err)
		}
		b.branchRIDs = append(b.branchRIDs, rid)
		for t := 0; t < 10; t++ {
			tt := b.schCtl.New()
			b.schCtl.SetUint(tt, 0, uint64(i*10+t+1))
			b.schCtl.SetUint(tt, 1, uint64(i+1))
			b.schCtl.SetUint(tt, 2, 100_000)
			trid, err := insertRow(db, w, b.teller, tt)
			if err != nil {
				return fmt.Errorf("load teller: %w", err)
			}
			b.tellerRIDs = append(b.tellerRIDs, trid)
		}
	}
	// Accounts, batch-committed for load speed.
	tx, err := db.Begin(w)
	if err != nil {
		return err
	}
	for a := 0; a < b.Accounts(); a++ {
		tup := b.schAcct.New()
		aid := uint64(a + 1)
		b.schAcct.SetUint(tup, 0, aid)
		b.schAcct.SetUint(tup, 1, uint64(a/b.AccountsPerBranch+1))
		b.schAcct.SetUint(tup, 2, 10_000)
		rid, err := b.account.Insert(tx, tup)
		if err != nil {
			tx.Abort()
			return fmt.Errorf("load account %d: %w", a, err)
		}
		if err := b.accountIdx.Insert(w, aid, rid); err != nil {
			tx.Abort()
			return err
		}
		if a%2000 == 1999 {
			if err := tx.Commit(); err != nil {
				return err
			}
			if tx, err = db.Begin(w); err != nil {
				return err
			}
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	return db.FlushAll(w)
}

// pickAccount draws an account id, uniform by default or Zipfian when
// configured.
func (b *TPCB) pickAccount(rng *rand.Rand) uint64 {
	if b.Zipfian {
		zi, ok := b.zipfs.Load(rng)
		if !ok {
			s := b.ZipfS
			if s == 0 {
				s = 1.1
			}
			zi, _ = b.zipfs.LoadOrStore(rng, NewZipf(rng, s, uint64(b.Accounts())))
		}
		return zi.(*Zipf).Next() + 1
	}
	return uint64(rng.Intn(b.Accounts()) + 1)
}

// RunOne executes one Account_Update transaction.
func (b *TPCB) RunOne(w *sim.Worker, rng *rand.Rand) (string, error) {
	db := b.DB
	aid := b.pickAccount(rng)
	tellerIdx := rng.Intn(len(b.tellerRIDs))
	branchIdx := tellerIdx / 10
	delta := uint64(rng.Intn(16_000_000) + 1) // spans the 4 low-order balance bytes

	arid, ok, err := b.accountIdx.Lookup(w, aid)
	if err != nil {
		return "Account_Update", err
	}
	if !ok {
		return "Account_Update", fmt.Errorf("tpcb: account %d missing", aid)
	}
	tx, err := db.Begin(w)
	if err != nil {
		return "Account_Update", err
	}
	// Account balance += delta (4-8 net bytes; small delta touches the
	// low-order bytes only). Read under the tuple lock so the
	// read-modify-write is atomic against concurrent terminals.
	cur, err := b.account.ReadLocked(tx, arid)
	if err != nil {
		tx.Abort()
		return "Account_Update", err
	}
	b.schAcct.AddUint(cur, 2, delta)
	if err := b.account.Update(tx, arid, cur); err != nil {
		tx.Abort()
		return "Account_Update", err
	}
	// Teller and branch balances.
	for i, rid := range []core.RID{b.tellerRIDs[tellerIdx], b.branchRIDs[branchIdx]} {
		tbl := b.teller
		if i == 1 {
			tbl = b.branch
		}
		row, err := tbl.ReadLocked(tx, rid)
		if err != nil {
			tx.Abort()
			return "Account_Update", err
		}
		b.schCtl.AddUint(row, 2, delta)
		if err := tbl.Update(tx, rid, row); err != nil {
			tx.Abort()
			return "Account_Update", err
		}
	}
	// History append (~24 bytes net on a fresh-page slot).
	h := b.schHist.New()
	b.schHist.SetUint(h, 0, aid)
	b.schHist.SetUint(h, 1, uint64(tellerIdx+1))
	b.schHist.SetUint(h, 2, uint64(branchIdx+1))
	b.schHist.SetUint(h, 3, delta)
	b.schHist.SetUint(h, 4, simNow(w))
	if _, err := b.history.Insert(tx, h); err != nil {
		tx.Abort()
		return "Account_Update", err
	}
	return "Account_Update", tx.Commit()
}
