package workload

import (
	"fmt"
	"testing"

	"ipa/internal/engine"
	"ipa/internal/sim"
)

// The index benchmarks report *simulated* time as ns/op — the same time
// base every experiment in this repo uses ("derived from simulated
// time, never from wall-clock", internal/sim) — so the coarse-vs-OLC
// comparison is deterministic in shape and independent of host core
// count. Wall-clock time is still emitted as wallns/op, and the OLC
// contention counters ride along as restarts/op and latchwaits/op.

// reportIndex emits the shared metric set for one measured interval.
func reportIndex(b *testing.B, simNs float64, before, after engine.IndexStats) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "wallns/op")
	b.ReportMetric(simNs/float64(b.N), "ns/op")
	b.ReportMetric(float64(after.Restarts-before.Restarts)/float64(b.N), "restarts/op")
	b.ReportMetric(float64(after.LatchWaits-before.LatchWaits)/float64(b.N), "latchwaits/op")
}

// BenchmarkIndexOps is the headline latching comparison: a warm buffer
// pool (the tree fully cached, the way OLC B+trees are benchmarked in
// the literature) and bare index operations — point lookups against
// scattered inserts, no tables, transactions or WAL. The coarse tree
// serialises every insert against every reader through the latchSim
// horizon; OLC writers hold only the leaf they touch, so the per-worker
// clocks advance independently.
func BenchmarkIndexOps(b *testing.B) {
	const preload = 20000
	for _, kind := range []engine.IndexKind{engine.IndexCoarse, engine.IndexOLC} {
		for _, mix := range []struct {
			name    string
			readPct int
		}{{"read95", 95}, {"mixed50", 50}} {
			for _, workers := range []int{1, 4, 16} {
				name := fmt.Sprintf("tree=%s/mix=%s/workers=%d", kind, mix.name, workers)
				b.Run(name, func(b *testing.B) {
					db, tl := newConcurrentDBShards(b, 2048, 8)
					b.ResetTimer()
					res, err := RunIndexOps(db, tl, "main", IndexOpsConfig{
						Kind: kind, ReadPct: mix.readPct, Workers: workers,
						Preload: preload, Ops: b.N, Seed: 3,
					})
					b.StopTimer()
					if err != nil {
						b.Fatal(err)
					}
					reportIndex(b, float64(res.SimTime), res.Before, res.After)
				})
			}
		}
	}
}

// BenchmarkIndexYCSB is the full-stack context benchmark: YCSB mixes
// through table + transaction + WAL + buffer pool, coarse vs OLC tree,
// 1..16 real terminal goroutines. Insert percentages are what exercise
// the tree's write path (table updates leave RIDs, and therefore the
// index, untouched under IPA). At transaction scale the 50µs
// transaction CPU and the heap I/O dilute the index latch, so the
// trees sit much closer together here than in BenchmarkIndexOps —
// which is itself a finding: the coarse default is safe until the
// index becomes the hot path.
func BenchmarkIndexYCSB(b *testing.B) {
	mixes := []struct {
		name                 string
		read, update, insert int
		zipf                 bool
		snap                 bool
	}{
		{"readheavy-uniform", 95, 0, 5, false, false},
		{"readheavy-zipf", 95, 0, 5, true, false},
		{"balanced-uniform", 50, 25, 25, false, false},
		{"scanheavy-uniform", 0, 5, 5, false, false}, // remaining 90% scans
		// read80/scan20 with every scan resolving its tuples through the
		// MVCC version store at a pinned snapshot LSN.
		{"snapscan-zipf", 80, 0, 0, true, true},
	}
	for _, kind := range []engine.IndexKind{engine.IndexCoarse, engine.IndexOLC} {
		for _, mix := range mixes {
			for _, workers := range []int{1, 4, 16} {
				name := fmt.Sprintf("tree=%s/mix=%s/workers=%d", kind, mix.name, workers)
				b.Run(name, func(b *testing.B) {
					var db *engine.DB
					var tl *sim.Timeline
					if mix.snap {
						db, tl = newHTAPDB(b, 512, 8)
					} else {
						db, tl = newConcurrentDBShards(b, 512, 8)
					}
					y := NewYCSB(db, "main", 5000, kind)
					y.ReadPct, y.UpdatePct, y.InsertPct = mix.read, mix.update, mix.insert
					y.Zipfian = mix.zipf
					y.SnapshotScan = mix.snap
					y.LatchSim = true
					if err := y.Load(tl.NewWorker()); err != nil {
						b.Fatal(err)
					}
					start := tl.Horizon()
					terminals := make([]*sim.Worker, workers)
					for i := range terminals {
						terminals[i] = tl.NewWorker()
						terminals[i].SetNow(start)
					}
					before := y.Index().Stats()
					b.ResetTimer()
					res, err := RunParallel(y, terminals, b.N, 7)
					b.StopTimer()
					if err != nil {
						b.Fatal(err)
					}
					if int(res.Transactions) != b.N {
						b.Fatalf("committed %d of %d", res.Transactions, b.N)
					}
					reportIndex(b, res.SimSeconds*1e9, before, y.Index().Stats())
				})
			}
		}
	}
}
