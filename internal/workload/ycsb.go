package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/sim"
)

// IndexOpCPU is the simulated CPU cost charged per index operation when
// the latch-cost model is enabled (YCSB.LatchSim). It is the sim-time
// floor of one descent; the interesting part — flash fetches for
// uncached nodes — is charged by the buffer pool as usual.
const IndexOpCPU = 2 * time.Microsecond

// latchSim is the simulated-time model of a tree-wide reader/writer
// latch, two busy horizons wide. Readers start after the last writer's
// end and record their own end; concurrent readers overlap freely.
// A writer starts after both the last writer AND every reader admitted
// so far (an exclusive acquire drains in-flight shared holders), and
// everything it does inside the section — CPU, simulated flash fetches
// for uncached nodes — pushes the writer horizon out and stalls every
// later index operation. That is the serialisation a coarse latch
// imposes in real time, expressed in the repo's deterministic time base.
//
// The OLC tree gets no horizon: its exclusive latches cover only
// in-memory leaf edits (descents and fetches run unlatched), so its
// serialisation is negligible at this granularity; the residual cost
// shows up in the measured restart and latch-wait counters instead.
type latchSim struct {
	mu       sync.Mutex
	writeEnd sim.Time // end of the last exclusive section
	readEnd  sim.Time // latest end among shared sections
}

// enterShared stalls w until the last writer is out.
func (l *latchSim) enterShared(w *sim.Worker) {
	l.mu.Lock()
	we := l.writeEnd
	l.mu.Unlock()
	if we > w.Now() {
		w.SetNow(we)
	}
}

// exitShared records the end of a shared section.
func (l *latchSim) exitShared(w *sim.Worker) {
	l.mu.Lock()
	if w.Now() > l.readEnd {
		l.readEnd = w.Now()
	}
	l.mu.Unlock()
}

// enterExcl stalls w until writers and in-flight readers are out.
func (l *latchSim) enterExcl(w *sim.Worker) {
	l.mu.Lock()
	t := l.writeEnd
	if l.readEnd > t {
		t = l.readEnd
	}
	l.mu.Unlock()
	if t > w.Now() {
		w.SetNow(t)
	}
}

// exitExcl publishes the end of an exclusive section.
func (l *latchSim) exitExcl(w *sim.Worker) {
	l.mu.Lock()
	if w.Now() > l.writeEnd {
		l.writeEnd = w.Now()
	}
	l.mu.Unlock()
}

// YCSB is a YCSB-style key-value workload over one table and one
// ordered index: point reads, field updates, fresh-key inserts and
// short range scans in configurable proportions, with uniform or
// Zipfian key choice. Unlike the paper's transactional drivers it is
// index-centric — every operation starts at the B+tree — which makes it
// the measurement harness for the index latching work: coarse vs OLC
// trees under 1..N terminals.
//
// The standard mixes map as: workload B ≈ {Read:95, Update:5},
// A ≈ {Read:50, Update:50}, E ≈ {Scan:95, Insert:5}.
type YCSB struct {
	DB     *engine.DB
	Region string
	// Prefix names the table and index ("<Prefix>_kv", "<Prefix>_pk"),
	// so multiple instances can coexist in one database.
	Prefix string

	Records int // initial population (keys 1..Records)

	// Mix percentages; must sum to 100. Remainder after Read+Update+
	// Insert is Scan.
	ReadPct, UpdatePct, InsertPct int

	ScanLen int  // keys visited per scan (default 20)
	Zipfian bool // Zipfian instead of uniform key choice
	ZipfS   float64

	// SnapshotScan runs each scan as an MVCC snapshot transaction: the
	// index supplies the RID range, and every tuple is resolved through
	// the version store at the pinned snapshot LSN instead of the heap's
	// latest state. Requires the DB to run with MVCC enabled.
	SnapshotScan bool

	// Kind selects the index implementation under test.
	Kind engine.IndexKind

	// LatchSim enables the simulated-time latch-cost model: every
	// index operation is charged IndexOpCPU, and for the coarse tree
	// the whole operation runs inside a FIFO latch horizon. Off by
	// default so functional tests and the paper experiments keep their
	// historical timings; the index benchmarks turn it on.
	LatchSim bool

	table *engine.Table
	idx   engine.Index
	latch *latchSim
	sch   *engine.Schema // key(8) counter(8) filler(84)
	next  atomic.Uint64  // highest key assigned so far

	// zipfs caches one Zipf generator per terminal RNG: rand.Zipf is
	// not safe for concurrent use and is seeded from the terminal's
	// own rng, keeping runs deterministic per terminal.
	zipfs sync.Map // *rand.Rand -> *Zipf
}

// NewYCSB constructs a driver; Load must be called before RunOne.
func NewYCSB(db *engine.DB, region string, records int, kind engine.IndexKind) *YCSB {
	sch, _ := engine.NewSchema(8, 8, 84)
	return &YCSB{
		DB: db, Region: region, Prefix: "ycsb",
		Records: records,
		ReadPct: 95, UpdatePct: 5,
		ScanLen: 20, ZipfS: 1.1,
		Kind: kind,
		sch:  sch,
	}
}

// Name implements Workload.
func (y *YCSB) Name() string {
	return fmt.Sprintf("YCSB(%s r%d/u%d/i%d/s%d)",
		y.Kind, y.ReadPct, y.UpdatePct, y.InsertPct,
		100-y.ReadPct-y.UpdatePct-y.InsertPct)
}

// Index exposes the index under test (for stats reporting).
func (y *YCSB) Index() engine.Index { return y.idx }

// Load creates the table and index and inserts the initial records.
func (y *YCSB) Load(w *sim.Worker) error {
	if y.ReadPct+y.UpdatePct+y.InsertPct > 100 {
		return fmt.Errorf("ycsb: mix sums past 100")
	}
	db := y.DB
	var err error
	if y.table, err = db.CreateTable(y.Prefix+"_kv", y.Region); err != nil {
		return err
	}
	if y.idx, err = db.CreateIndexKind(y.Prefix+"_pk", y.Region, y.Kind); err != nil {
		return err
	}
	if y.LatchSim && y.Kind == engine.IndexCoarse {
		y.latch = &latchSim{}
	}
	for k := 1; k <= y.Records; k++ {
		if err := y.insertKey(w, uint64(k)); err != nil {
			return err
		}
	}
	y.next.Store(uint64(y.Records))
	return nil
}

func (y *YCSB) insertKey(w *sim.Worker, k uint64) error {
	tup := y.sch.New()
	y.sch.SetUint(tup, 0, k)
	rid, err := insertRow(y.DB, w, y.table, tup)
	if err != nil {
		return err
	}
	return y.idx.Insert(w, k, rid)
}

// indexSharedBegin opens a shared-latch index operation under the
// latch-cost model: wait out any writer, then pay the descent CPU.
func (y *YCSB) indexSharedBegin(w *sim.Worker) {
	if !y.LatchSim || w == nil {
		return
	}
	if y.latch != nil {
		y.latch.enterShared(w)
	}
	w.Compute(IndexOpCPU)
}

func (y *YCSB) indexSharedEnd(w *sim.Worker) {
	if !y.LatchSim || w == nil || y.latch == nil {
		return
	}
	y.latch.exitShared(w)
}

// indexExclBegin opens an exclusive-latch index operation; the pair
// indexExclEnd publishes its full duration as the new latch horizon.
func (y *YCSB) indexExclBegin(w *sim.Worker) {
	if !y.LatchSim || w == nil {
		return
	}
	if y.latch != nil {
		y.latch.enterExcl(w)
	}
	w.Compute(IndexOpCPU)
}

func (y *YCSB) indexExclEnd(w *sim.Worker) {
	if !y.LatchSim || w == nil || y.latch == nil {
		return
	}
	y.latch.exitExcl(w)
}

// pickKey draws a key from the populated range.
func (y *YCSB) pickKey(rng *rand.Rand) uint64 {
	n := y.next.Load()
	if n == 0 {
		return 1
	}
	if y.Zipfian {
		zi, ok := y.zipfs.Load(rng)
		if !ok {
			zi, _ = y.zipfs.LoadOrStore(rng, NewZipf(rng, y.ZipfS, uint64(y.Records)))
		}
		return zi.(*Zipf).Next() + 1
	}
	return rng.Uint64()%n + 1
}

// RunOne implements Workload. Keys drawn concurrently with an
// in-flight insert may not be indexed yet; reads and updates treat
// that as a clean miss, the way a YCSB client shrugs off a not-found.
func (y *YCSB) RunOne(w *sim.Worker, rng *rand.Rand) (string, error) {
	p := rng.Intn(100)
	switch {
	case p < y.ReadPct:
		k := y.pickKey(rng)
		y.indexSharedBegin(w)
		rid, ok, err := y.idx.Lookup(w, k)
		y.indexSharedEnd(w)
		if err != nil {
			return "Read", err
		}
		if !ok {
			return "Read", nil
		}
		_, err = y.table.Read(w, rid)
		return "Read", err
	case p < y.ReadPct+y.UpdatePct:
		k := y.pickKey(rng)
		y.indexSharedBegin(w)
		rid, ok, err := y.idx.Lookup(w, k)
		y.indexSharedEnd(w)
		if err != nil || !ok {
			return "Update", err
		}
		tx, err := y.DB.Begin(w)
		if err != nil {
			return "Update", err
		}
		cur, err := y.table.Read(w, rid)
		if err != nil {
			tx.Abort()
			return "Update", err
		}
		y.sch.SetUint(cur, 1, rng.Uint64())
		if err := y.table.Update(tx, rid, cur); err != nil {
			tx.Abort()
			return "Update", err
		}
		return "Update", tx.Commit()
	case p < y.ReadPct+y.UpdatePct+y.InsertPct:
		// The table insert happens before the index critical section:
		// a real coarse latch covers the tree update, not the heap I/O.
		k := y.next.Add(1)
		tup := y.sch.New()
		y.sch.SetUint(tup, 0, k)
		rid, err := insertRow(y.DB, w, y.table, tup)
		if err != nil {
			return "Insert", err
		}
		y.indexExclBegin(w)
		err = y.idx.Insert(w, k, rid)
		y.indexExclEnd(w)
		return "Insert", err
	default:
		lo := y.pickKey(rng)
		limit := y.ScanLen
		if limit <= 0 {
			limit = 20
		}
		var rids []core.RID
		y.indexSharedBegin(w)
		err := y.idx.Range(w, lo, ^uint64(0)>>1, func(key uint64, rid core.RID) bool {
			rids = append(rids, rid)
			return len(rids) < limit
		})
		y.indexSharedEnd(w)
		if err != nil || !y.SnapshotScan {
			return "Scan", err
		}
		// Snapshot mode: resolve each scanned tuple through the version
		// store at a pinned LSN — lock-free, abort-free stable reads.
		tx, err := y.DB.BeginSnapshot(w)
		if err != nil {
			return "Scan", err
		}
		for _, rid := range rids {
			if _, err := y.table.ReadSnapshot(tx, rid); err != nil {
				if errors.Is(err, engine.ErrNoTuple) {
					continue // drawn concurrently with an in-flight insert
				}
				tx.Abort()
				return "Scan", err
			}
		}
		return "Scan", tx.Commit()
	}
}
