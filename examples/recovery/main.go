// Recovery: IPA leaves crash recovery untouched (paper Sec. 6.2).
//
// A committed transaction's small update is flushed to flash as a
// delta-record appended to the original physical page; an uncommitted
// transaction's update is also stolen to flash the same way. Then the
// database "crashes" (buffer pool and transaction table are wiped).
// ARIES restart recovery — analysis, LSN-guarded redo, undo with CLRs —
// runs over pages reconstructed from flash *plus their delta-records*,
// proving the paper's claim that the recovery protocol needs no changes.
//
// Run: go run ./examples/recovery
package main

import (
	"fmt"
	"log"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/sim"
)

func main() {
	g := flash.Geometry{
		Chips: 2, BlocksPerChip: 64, PagesPerBlock: 64,
		PageSize: 4096, OOBSize: 256, Cell: flash.SLC,
	}
	tl := sim.NewTimeline(g.Chips)
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, tl)
	if err != nil {
		log.Fatal(err)
	}
	dev := noftl.Open(arr)
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "data", Mode: noftl.ModeSLC, Scheme: core.NewScheme(2, 4), BlocksPerChip: 64,
	}); err != nil {
		log.Fatal(err)
	}
	db, err := engine.New(dev, engine.Options{PageSize: 4096, BufferFrames: 64, Timeline: tl})
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := db.CreateTable("ledger", "data")
	if err != nil {
		log.Fatal(err)
	}
	schema, _ := engine.NewSchema(8, 8)
	w := tl.NewWorker()

	// Committed base state: two rows, flushed out-of-place.
	tx := begin(db, w)
	row := schema.New()
	schema.SetUint(row, 0, 1)
	schema.SetUint(row, 1, 100)
	ridA, _ := tbl.Insert(tx, row)
	schema.SetUint(row, 0, 2)
	schema.SetUint(row, 1, 200)
	ridB, _ := tbl.Insert(tx, row)
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	db.FlushAll(w)
	fmt.Println("base state on flash: A=100, B=200")

	// Committed small update → delta-record on flash.
	tx = begin(db, w)
	cur, _ := tbl.Read(w, ridA)
	schema.AddUint(cur, 1, 11)
	tbl.Update(tx, ridA, cur)
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	db.FlushAll(w)

	// Uncommitted update, stolen to flash as another delta-record.
	loser := begin(db, w)
	cur, _ = tbl.Read(w, ridB)
	schema.SetUint(cur, 1, 999)
	tbl.Update(loser, ridB, cur)
	db.FlushAll(w)

	rs := stats(db).Regions["data"]
	fmt.Printf("before crash: %d out-of-place writes, %d in-place appends on flash\n",
		rs.OutOfPlaceWrites, rs.DeltaWrites)
	fmt.Println("committed: A += 11 (as delta-record); uncommitted: B = 999 (stolen, as delta-record)")

	// CRASH.
	if err := db.SimulateCrash(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n*** crash: buffer pool and transaction table wiped ***")

	rep, err := db.Recover(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d records analysed, %d ops redone, %d skipped (LSN guard), %d losers undone\n",
		rep.AnalyzedRecords, rep.RedoneOps, rep.SkippedOps, rep.UndoneTxs)

	a, _ := tbl.Read(w, ridA)
	b, _ := tbl.Read(w, ridB)
	fmt.Printf("\nafter recovery: A=%d (want 111), B=%d (want 200)\n",
		schema.GetUint(a, 1), schema.GetUint(b, 1))
	if schema.GetUint(a, 1) != 111 || schema.GetUint(b, 1) != 200 {
		log.Fatal("recovery produced wrong state!")
	}
	fmt.Println("OK — committed work survived, the loser was rolled back,")
	fmt.Println("and redo/undo ran over pages rebuilt from flash + delta-records.")
}

// begin starts a transaction, exiting on error (examples run on an open DB).
func begin(db *engine.DB, w *sim.Worker) *engine.Tx {
	tx, err := db.Begin(w)
	if err != nil {
		log.Fatal(err)
	}
	return tx
}

// stats snapshots the engine, exiting on error.
func stats(db *engine.DB) engine.Stats {
	s, err := db.Stats()
	if err != nil {
		log.Fatal(err)
	}
	return s
}
