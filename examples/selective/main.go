// Selective: per-object IPA through NoFTL regions + the IPA advisor.
//
// The paper's contribution II: IPA is applied selectively to the
// database objects that benefit ("solely for the STOCK table in TPC-C"),
// with no DBA overhead beyond placing tables into regions — and the IPA
// advisor picks the [N×M] parameters from a workload profile.
//
// This example creates three regions on one MLC device:
//
//	rgHot  — pSLC,    [2×4]: the write-hot tables
//	rgWarm — odd-MLC, [2×3]: moderately updated tables
//	rgCold — IPA off:         read-mostly / append-only tables
//
// runs a mixed workload, prints per-region flash behaviour, and then asks
// the advisor what scheme the observed update profile actually warrants.
//
// Run: go run ./examples/selective
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ipa/internal/advisor"
	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/sim"
)

func main() {
	g := flash.Geometry{
		Chips: 4, BlocksPerChip: 64, PagesPerBlock: 64,
		PageSize: 4096, OOBSize: 256, Cell: flash.MLC,
	}
	tl := sim.NewTimeline(g.Chips)
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.MLCTiming(), StrictProgramOrder: true, MaxAppends: 4,
	}, tl)
	if err != nil {
		log.Fatal(err)
	}
	dev := noftl.Open(arr)
	// The CREATE REGION statements of the paper's Figure 3, as Go calls.
	for _, rc := range []noftl.RegionConfig{
		{Name: "rgHot", Mode: noftl.ModePSLC, Scheme: core.NewScheme(2, 4), BlocksPerChip: 24},
		{Name: "rgWarm", Mode: noftl.ModeOddMLC, Scheme: core.NewScheme(2, 3), BlocksPerChip: 24},
		{Name: "rgCold", Mode: noftl.ModeNone, BlocksPerChip: 16},
	} {
		if _, err := dev.CreateRegion(rc); err != nil {
			log.Fatal(err)
		}
	}
	db, err := engine.New(dev, engine.Options{PageSize: 4096, BufferFrames: 64, Timeline: tl})
	if err != nil {
		log.Fatal(err)
	}
	stock, _ := db.CreateTable("stock", "rgHot")        // tiny numeric updates, hot
	customer, _ := db.CreateTable("customer", "rgWarm") // balance updates, warm
	history, _ := db.CreateTable("history", "rgCold")   // append-only

	sch, _ := engine.NewSchema(8, 8, 64)
	w := tl.NewWorker()
	rng := rand.New(rand.NewSource(7))

	// Load.
	var stockRIDs, custRIDs []core.RID
	load := func(tbl *engine.Table, n int, out *[]core.RID) {
		tx := begin(db, w)
		for i := 0; i < n; i++ {
			tup := sch.New()
			sch.SetUint(tup, 0, uint64(i))
			rid, err := tbl.Insert(tx, tup)
			if err != nil {
				log.Fatal(err)
			}
			*out = append(*out, rid)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	load(stock, 800, &stockRIDs)
	load(customer, 400, &custRIDs)
	db.FlushAll(w)
	for _, r := range []string{"rgHot", "rgWarm", "rgCold"} {
		db.Store(r).Region().ResetStats()
	}

	// Mixed workload: stock gets hammered with 1-3 byte updates, customer
	// sees moderate updates, history only appends.
	fmt.Println("running 6000 mixed operations ...")
	for i := 0; i < 6000; i++ {
		tx := begin(db, w)
		switch {
		case i%10 < 7: // hot: stock quantity -= q
			rid := stockRIDs[rng.Intn(len(stockRIDs))]
			cur, err := stock.Read(w, rid)
			if err != nil {
				log.Fatal(err)
			}
			sch.AddUint(cur, 1, uint64(rng.Intn(9)+1))
			if err := stock.Update(tx, rid, cur); err != nil {
				log.Fatal(err)
			}
		case i%10 < 9: // warm: customer balance
			rid := custRIDs[rng.Intn(len(custRIDs))]
			cur, err := customer.Read(w, rid)
			if err != nil {
				log.Fatal(err)
			}
			sch.AddUint(cur, 1, uint64(rng.Intn(999)+1))
			if err := customer.Update(tx, rid, cur); err != nil {
				log.Fatal(err)
			}
		default: // cold: history append
			h := sch.New()
			sch.SetUint(h, 0, uint64(i))
			if _, err := history.Insert(tx, h); err != nil {
				log.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	db.FlushAll(w)

	fmt.Printf("\n%-8s %-8s %-8s %10s %10s %10s %8s\n",
		"region", "mode", "scheme", "oop", "appends", "gc-erases", "ipa%")
	es := stats(db)
	for _, name := range []string{"rgHot", "rgWarm", "rgCold"} {
		st := db.Store(name)
		rs := es.Regions[name]
		fmt.Printf("%-8s %-8s %-8s %10d %10d %10d %7.0f%%\n",
			name, st.Region().Mode(), st.Region().Scheme(),
			rs.OutOfPlaceWrites, rs.DeltaWrites, rs.GCErases, 100*rs.IPAFraction())
	}

	// The advisor, fed from the write-ahead log (Sec. 8.4).
	prof := db.WALProfile()
	fmt.Printf("\nIPA advisor (from %d log-profiled update samples):\n", prof.Len())
	for _, goal := range []advisor.Goal{advisor.Performance, advisor.Longevity, advisor.Space} {
		rec, err := advisor.RecommendScheme(prof, advisor.Options{Goal: goal, MaxN: 3, PageSize: 4096})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s → %-7v covers %3.0f%% per record, %.2f%% space\n",
			goal, rec.Scheme, 100*rec.CoveredFraction, 100*rec.SpaceOverhead)
	}

	// Per-table storage advice: which write-reduction scheme each table's
	// own update-size CDF warrants (ipa / pdl / oop).
	decisions, err := db.AdviseStorage(w, advisor.Options{Goal: advisor.Performance, MaxN: 3, PageSize: 4096}, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-table storage advice:")
	for _, d := range decisions {
		fmt.Printf("  %-10s in %-7s → %-4v (p90 %4dB over %d samples)\n",
			d.Table, d.Region, d.Advice.Storage, d.Advice.P90, d.Samples)
	}
}

// begin starts a transaction, exiting on error (examples run on an open DB).
func begin(db *engine.DB, w *sim.Worker) *engine.Tx {
	tx, err := db.Begin(w)
	if err != nil {
		log.Fatal(err)
	}
	return tx
}

// stats snapshots the engine, exiting on error.
func stats(db *engine.DB) engine.Stats {
	s, err := db.Stats()
	if err != nil {
		log.Fatal(err)
	}
	return s
}
