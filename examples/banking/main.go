// Banking: the paper's headline result on a TPC-B-style workload.
//
// The same bank (branches, tellers, accounts, history) runs twice on
// identical flash: once with IPA disabled ([0×0], the classic
// out-of-place SSD behaviour) and once with the [2×4] In-Place Append
// scheme. The example prints the erase counts, garbage-collection
// overhead, write amplification and throughput of both runs.
//
// Run: go run ./examples/banking
package main

import (
	"fmt"
	"log"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/sim"
	"ipa/internal/workload"
)

type outcome struct {
	scheme     core.Scheme
	throughput float64
	erases     uint64
	migrations uint64
	epw        float64 // erases per host write
	ipaFrac    float64
	wa         float64
}

func main() {
	base := run(core.Scheme{})
	ipa := run(core.NewScheme(2, 4))

	fmt.Println("TPC-B style bank: [0×0] baseline vs [2×4] In-Place Appends")
	fmt.Println()
	fmt.Printf("%-28s %12s %12s %10s\n", "metric", "[0×0]", "[2×4]", "change")
	row := func(name string, b, i float64, format string) {
		change := "-"
		if b != 0 {
			change = fmt.Sprintf("%+.0f%%", 100*(i-b)/b)
		}
		fmt.Printf("%-28s %12s %12s %10s\n", name,
			fmt.Sprintf(format, b), fmt.Sprintf(format, i), change)
	}
	row("tx throughput [tps]", base.throughput, ipa.throughput, "%.0f")
	row("GC erases", float64(base.erases), float64(ipa.erases), "%.0f")
	row("GC page migrations", float64(base.migrations), float64(ipa.migrations), "%.0f")
	row("erases per host write", base.epw, ipa.epw, "%.4f")
	row("write amplification", base.wa, ipa.wa, "%.1f")
	fmt.Printf("%-28s %12s %12s\n", "writes served as appends",
		"0%", fmt.Sprintf("%.0f%%", 100*ipa.ipaFrac))
	fmt.Println()
	fmt.Println("(the paper reports ~2x fewer erases, 2-3x lower write amplification,")
	fmt.Println(" and up to +48% throughput for TPC-B on real hardware)")
}

func run(scheme core.Scheme) outcome {
	g := flash.Geometry{
		Chips: 8, BlocksPerChip: 12, PagesPerBlock: 64,
		PageSize: 4096, OOBSize: 256, Cell: flash.SLC,
	}
	tl := sim.NewTimeline(g.Chips)
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, tl)
	if err != nil {
		log.Fatal(err)
	}
	dev := noftl.Open(arr)
	mode := noftl.ModeSLC
	if scheme.Disabled() {
		mode = noftl.ModeNone
	}
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "bank", Mode: mode, Scheme: scheme, BlocksPerChip: 12, OverProvision: 0.10,
	}); err != nil {
		log.Fatal(err)
	}
	db, err := engine.New(dev, engine.Options{
		PageSize: 4096, BufferFrames: 96, Timeline: tl,
		LogCapacity: 1 << 22, LogReclaimThreshold: 0.35, DirtyThreshold: 0.125,
	})
	if err != nil {
		log.Fatal(err)
	}
	bank := workload.NewTPCB(db, "bank", 2, 4000)
	w := tl.NewWorker()
	if err := bank.Load(w); err != nil {
		log.Fatal(err)
	}
	db.Store("bank").Region().ResetStats()
	arr.ResetStats()

	terminals := make([]*sim.Worker, 4)
	for i := range terminals {
		terminals[i] = tl.NewWorker()
		terminals[i].SetNow(w.Now())
	}
	res, err := workload.Run(bank, terminals, 12000, 99)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.FlushAll(w); err != nil {
		log.Fatal(err)
	}
	es := stats(db)
	rs := es.Regions["bank"]
	stats := es.Stores["bank"]
	gross := float64(rs.OutOfPlaceWrites)*4096 + float64(rs.DeltaWrites)*float64(scheme.RecordSize())
	net := stats.NetBytes.Mean() * float64(stats.NetBytes.Count())
	wa := 0.0
	if net > 0 {
		wa = gross / net
	}
	return outcome{
		scheme:     scheme,
		throughput: res.Throughput,
		erases:     rs.GCErases,
		migrations: rs.GCPageMigrations,
		epw:        rs.ErasesPerHostWrite(),
		ipaFrac:    rs.IPAFraction(),
		wa:         wa,
	}
}

// stats snapshots the engine, exiting on error.
func stats(db *engine.DB) engine.Stats {
	s, err := db.Stats()
	if err != nil {
		log.Fatal(err)
	}
	return s
}
