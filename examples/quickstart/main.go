// Quickstart: the smallest end-to-end use of the IPA stack.
//
// It builds a simulated flash device, creates a NoFTL region with a
// [2×3] In-Place Append scheme, stores a table in it, and shows that a
// small update is persisted as a delta-record appended to the *same*
// physical flash page — no out-of-place write, no erase.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/sim"
)

func main() {
	// 1. A small SLC flash array: 4 chips × 64 blocks × 64 pages × 4KB.
	g := flash.Geometry{
		Chips: 4, BlocksPerChip: 64, PagesPerBlock: 64,
		PageSize: 4096, OOBSize: 256, Cell: flash.SLC,
	}
	tl := sim.NewTimeline(g.Chips)
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, tl)
	if err != nil {
		log.Fatal(err)
	}

	// 2. NoFTL device with one region: IPA enabled, [2×3] scheme
	//    (2 delta-records per page, 3 changed body bytes each — the
	//    paper's TPC-C configuration, 2.2% space overhead).
	dev := noftl.Open(arr)
	scheme := core.NewScheme(2, 3)
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "hot", Mode: noftl.ModeSLC, Scheme: scheme, BlocksPerChip: 64,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("region 'hot': scheme %v, delta area %dB/page (%.1f%% overhead)\n",
		scheme, scheme.AreaSize(), 100*scheme.SpaceOverhead(4096))

	// 3. Storage engine with WAL, buffer pool and ECC.
	db, err := engine.New(dev, engine.Options{
		PageSize: 4096, BufferFrames: 128, Timeline: tl, UseECC: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := db.CreateTable("accounts", "hot")
	if err != nil {
		log.Fatal(err)
	}

	// 4. Insert a row: id(8) balance(8) name(32).
	schema, _ := engine.NewSchema(8, 8, 32)
	w := tl.NewWorker()
	tx := begin(db, w)
	row := schema.New()
	schema.SetUint(row, 0, 1)
	schema.SetUint(row, 1, 1000)
	schema.SetBytes(row, 2, []byte("alice"))
	rid, err := tbl.Insert(tx, row)
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := db.FlushAll(w); err != nil { // first write: out-of-place
		log.Fatal(err)
	}

	// 5. A small update: balance += 42 changes one byte of net data.
	tx = begin(db, w)
	cur, _ := tbl.Read(w, rid)
	schema.AddUint(cur, 1, 42)
	if err := tbl.Update(tx, rid, cur); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := db.FlushAll(w); err != nil { // this one is an In-Place Append
		log.Fatal(err)
	}

	// 6. Show what happened at each layer — one engine.Stats snapshot
	//    covers the region, the store and the raw flash array.
	es := stats(db)
	rs := es.Regions["hot"]
	fs := es.Flash
	fmt.Printf("\nafter one insert + one small update:\n")
	fmt.Printf("  out-of-place page writes : %d\n", rs.OutOfPlaceWrites)
	fmt.Printf("  in-place appends         : %d (write_delta)\n", rs.DeltaWrites)
	fmt.Printf("  flash ISPP programs      : %d of %dB each (vs %dB full page)\n",
		fs.DeltaPrograms, scheme.RecordSize(), 4096)
	fmt.Printf("  erases                   : %d\n", fs.Erases)

	// 7. Prove durability: drop the page from the buffer and re-read —
	//    the delta-record is applied on fetch.
	if err := db.Pool().Drop(rid.Page); err != nil {
		log.Fatal(err)
	}
	got, err := tbl.Read(w, rid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nre-fetched from flash: balance = %d (want 1042)\n", schema.GetUint(got, 1))
	if schema.GetUint(got, 1) != 1042 {
		log.Fatal("balance mismatch!")
	}
	fmt.Println("OK")
}

// begin starts a transaction, exiting on error (examples run on an open DB).
func begin(db *engine.DB, w *sim.Worker) *engine.Tx {
	tx, err := db.Begin(w)
	if err != nil {
		log.Fatal(err)
	}
	return tx
}

// stats snapshots the engine, exiting on error.
func stats(db *engine.DB) engine.Stats {
	s, err := db.Stats()
	if err != nil {
		log.Fatal(err)
	}
	return s
}
