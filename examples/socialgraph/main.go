// Socialgraph: In-Place Appends on a LinkBench-style workload.
//
// Social-graph updates are larger than classic OLTP (up to ~125 gross
// bytes per page), so the paper uses [N×100] / [N×125] schemes on 8KB
// pages. This example loads a small graph, runs the mixed read/write
// operation set, and prints the update-size CDF next to the fraction of
// writes served as appends — the data behind the paper's Figure 10 and
// Table 5.
//
// Run: go run ./examples/socialgraph
package main

import (
	"fmt"
	"log"
	"strings"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/sim"
	"ipa/internal/workload"
)

func main() {
	scheme := core.NewScheme(2, 100)
	g := flash.Geometry{
		Chips: 8, BlocksPerChip: 64, PagesPerBlock: 64,
		PageSize: 8192, OOBSize: 512, Cell: flash.SLC,
	}
	tl := sim.NewTimeline(g.Chips)
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, tl)
	if err != nil {
		log.Fatal(err)
	}
	dev := noftl.Open(arr)
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "graph", Mode: noftl.ModeSLC, Scheme: scheme, BlocksPerChip: 64,
	}); err != nil {
		log.Fatal(err)
	}
	db, err := engine.New(dev, engine.Options{
		PageSize: 8192, BufferFrames: 64, Timeline: tl, DirtyThreshold: 0.125,
	})
	if err != nil {
		log.Fatal(err)
	}
	lb := workload.NewLinkBench(db, "graph", 1200, 4)
	w := tl.NewWorker()
	fmt.Println("loading social graph (1200 nodes, ~4800 edges) ...")
	if err := lb.Load(w); err != nil {
		log.Fatal(err)
	}
	db.Store("graph").Region().ResetStats()
	st := db.Store("graph")
	st.Stats().GrossBytes.Reset()

	fmt.Println("running 8000 LinkBench operations ...")
	if _, err := workload.Run(lb, []*sim.Worker{w}, 8000, 3); err != nil {
		log.Fatal(err)
	}
	if err := db.FlushAll(w); err != nil {
		log.Fatal(err)
	}

	es := stats(db)
	gross := es.Stores["graph"].GrossBytes
	fmt.Printf("\nupdate-size CDF (gross bytes changed per 8KB page, %d update I/Os):\n", gross.Count())
	for _, th := range []int{10, 25, 50, 100, 125, 200, 400} {
		f := gross.FractionLE(th)
		bar := strings.Repeat("#", int(f*40))
		fmt.Printf("  ≤ %4dB  %5.1f%%  %s\n", th, 100*f, bar)
	}
	rs := es.Regions["graph"]
	fmt.Printf("\nscheme %v on 8KB pages (%.1f%% space overhead):\n", scheme, 100*scheme.SpaceOverhead(8192))
	fmt.Printf("  writes served as in-place appends : %.0f%%\n", 100*rs.IPAFraction())
	fmt.Printf("  out-of-place page writes           : %d\n", rs.OutOfPlaceWrites)
	fmt.Printf("  GC erases                          : %d\n", rs.GCErases)
	fmt.Println("\n(the paper reports 28-47% of LinkBench update I/Os as appends, Table 3/Fig. 6)")
}

// stats snapshots the engine, exiting on error.
func stats(db *engine.DB) engine.Stats {
	s, err := db.Stats()
	if err != nil {
		log.Fatal(err)
	}
	return s
}
