// Command ipadvisor demonstrates the IPA advisor (paper Sec. 8.4): it
// runs a short workload, profiles the update sizes from the write-ahead
// log, and prints the recommended [N×M] scheme for each optimisation
// goal.
//
// Usage:
//
//	ipadvisor -bench tpcc -tx 2000 -maxn 3 -pagesize 4096
package main

import (
	"flag"
	"fmt"
	"os"

	"ipa/internal/advisor"
	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/sim"
	"ipa/internal/workload"
)

func main() {
	bench := flag.String("bench", "tpcc", "workload to profile: tpcb | tpcc | tatp | linkbench")
	tx := flag.Int("tx", 2000, "transactions to profile")
	maxN := flag.Int("maxn", 3, "flash re-program budget (2-3 MLC, more SLC)")
	pageSize := flag.Int("pagesize", 4096, "database page size")
	flag.Parse()

	if err := run(*bench, *tx, *maxN, *pageSize); err != nil {
		fmt.Fprintf(os.Stderr, "ipadvisor: %v\n", err)
		os.Exit(1)
	}
}

func run(bench string, tx, maxN, pageSize int) error {
	g := flash.Geometry{
		Chips: 4, BlocksPerChip: 512, PagesPerBlock: 64,
		PageSize: pageSize, OOBSize: pageSize / 16, Cell: flash.SLC,
	}
	tl := sim.NewTimeline(g.Chips)
	arr, err := flash.New(flash.Config{Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8}, tl)
	if err != nil {
		return err
	}
	dev := noftl.Open(arr)
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "data", Mode: noftl.ModeSLC, Scheme: core.NewScheme(3, core.MaxM), BlocksPerChip: 512,
	}); err != nil {
		return err
	}
	db, err := engine.New(dev, engine.Options{PageSize: pageSize, BufferFrames: 4096, Timeline: tl})
	if err != nil {
		return err
	}
	var wl workload.Workload
	switch bench {
	case "tpcb":
		wl = workload.NewTPCB(db, "data", 1, 2000)
	case "tpcc":
		wl = workload.NewTPCC(db, "data", 1, 2400, 100)
	case "tatp":
		wl = workload.NewTATP(db, "data", 4000)
	case "linkbench":
		wl = workload.NewLinkBench(db, "data", 1500, 4)
	default:
		return fmt.Errorf("unknown bench %q", bench)
	}
	w := tl.NewWorker()
	fmt.Printf("loading %s ...\n", wl.Name())
	if err := wl.Load(w); err != nil {
		return err
	}
	fmt.Printf("profiling %d transactions ...\n", tx)
	if _, err := workload.Run(wl, []*sim.Worker{w}, tx, 1); err != nil {
		return err
	}
	prof := db.WALProfile()
	fmt.Printf("profile: %d per-page update samples from the DB log\n\n", prof.Len())
	for _, goal := range []advisor.Goal{advisor.Performance, advisor.Longevity, advisor.Space} {
		rec, err := advisor.RecommendScheme(prof, advisor.Options{Goal: goal, MaxN: maxN, PageSize: pageSize})
		if err != nil {
			return err
		}
		fmt.Printf("%-12s → %v  V=%d  covers %.0f%% of updates per record, space %.2f%%\n",
			goal, rec.Scheme, rec.Scheme.V, 100*rec.CoveredFraction, 100*rec.SpaceOverhead)
		fmt.Printf("             %s\n", rec.Rationale)
	}

	// Per-table storage-scheme advice (ipa vs pdl vs oop).
	decisions, err := db.AdviseStorage(w, advisor.Options{Goal: advisor.Performance, MaxN: maxN, PageSize: pageSize}, false)
	if err != nil {
		return err
	}
	if len(decisions) > 0 {
		fmt.Printf("\nstorage advice (per table, from %s):\n", wl.Name())
		for _, d := range decisions {
			fmt.Printf("  %-12s %-6v (p50 %4dB, p90 %4dB, %d samples) — %s\n",
				d.Table, d.Advice.Storage, d.Advice.P50, d.Advice.P90, d.Samples, d.Advice.Rationale)
		}
	}
	return nil
}
