// Command flashsim demonstrates the raw NAND flash model: the ISPP
// charge-increase rule that makes In-Place Appends physically possible,
// and the failures that protect against illegal overwrites.
//
// Usage:
//
//	flashsim                      # run the guided demonstration
//	flashsim -cell mlc            # on MLC flash (LSB/MSB pairing)
package main

import (
	"flag"
	"fmt"
	"os"

	"ipa/internal/flash"
)

func main() {
	cell := flag.String("cell", "slc", "cell type: slc | mlc")
	flag.Parse()

	ct := flash.SLC
	timing := flash.SLCTiming()
	if *cell == "mlc" {
		ct = flash.MLC
		timing = flash.MLCTiming()
	}
	g := flash.Geometry{
		Chips: 1, BlocksPerChip: 4, PagesPerBlock: 8,
		PageSize: 256, OOBSize: 16, Cell: ct,
	}
	arr, err := flash.New(flash.Config{Geometry: g, Timing: timing, StrictProgramOrder: true, MaxAppends: 4}, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("flash: %v, %d chips × %d blocks × %d pages × %dB\n\n",
		ct, g.Chips, g.BlocksPerChip, g.PagesPerBlock, g.PageSize)

	step := func(what string, err error) {
		if err != nil {
			fmt.Printf("  ✗ %-52s %v\n", what, err)
		} else {
			fmt.Printf("  ✓ %s\n", what)
		}
	}

	// 1. Program a page, leaving the tail erased (the delta-record area).
	page := make([]byte, 256)
	for i := 0; i < 200; i++ {
		page[i] = byte(i)
	}
	for i := 200; i < 256; i++ {
		page[i] = 0xFF
	}
	_, err = arr.Program(nil, 0, page, nil)
	step("program page 0 with bytes [0,200), tail left erased", err)

	// 2. Re-programming the whole page fails: erase-before-overwrite.
	_, err = arr.Program(nil, 0, page, nil)
	step("re-program page 0 without erase (must fail)", err)

	// 3. An ISPP append into the erased tail succeeds — this is
	// write_delta.
	_, err = arr.ProgramDelta(nil, 0, 200, []byte{0x12, 0x34, 0x56}, 0, nil)
	step("ISPP append 3 bytes at offset 200 (write_delta)", err)

	// 4. Appending a value that needs a 0→1 bit flip fails: charge can
	// only increase.
	_, err = arr.ProgramDelta(nil, 0, 200, []byte{0xFF}, 0, nil)
	step("overwrite 0x12 with 0xFF (charge decrease, must fail)", err)

	// 5. A subset overwrite (only clearing bits) is legal —
	// Correct-and-Refresh uses this.
	_, err = arr.ProgramDelta(nil, 0, 200, []byte{0x02}, 0, nil)
	step("overwrite 0x12 with 0x02 (subset bits, legal)", err)

	if ct == flash.MLC {
		// 6. MLC: appends on MSB pages are rejected.
		_, err = arr.Program(nil, 1, page, nil)
		step("program MSB page 1", err)
		_, err = arr.ProgramDelta(nil, 1, 200, []byte{0x01}, 0, nil)
		step("append on MSB page (must fail on MLC)", err)
	}

	// 7. Erase resets the block; the page programs again.
	_, err = arr.Erase(nil, 0)
	step("erase block 0", err)
	_, err = arr.Program(nil, 0, page, nil)
	step("program page 0 again after erase", err)

	s := arr.Stats()
	fmt.Printf("\nstats: %d programs, %d ISPP appends, %d reads, %d erases, %d bytes written\n",
		s.Programs, s.DeltaPrograms, s.Reads, s.Erases, s.BytesWritten)
	fmt.Printf("block 0 wear: %d P/E cycles\n", arr.EraseCount(0))
}
