// Command ipatrace records page-level I/O traces from a workload run and
// replays them on the In-Page Logging simulator and the In-Place Appends
// model — the exact methodology of the paper's Sec. 8.3 comparison
// ("we have recorded traces for TPC-C, TPC-B and TATP benchmarks ...
// each of those traces has been replayed on the original IPL simulator").
//
// Usage:
//
//	ipatrace -record -bench tpcb -tx 5000 -o tpcb.trace
//	ipatrace -replay tpcb.trace -scheme 2x4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ipa/internal/core"
	"ipa/internal/experiments"
	"ipa/internal/ipl"
	"ipa/internal/trace"
)

func main() {
	record := flag.Bool("record", false, "record a new trace from a workload run")
	replay := flag.String("replay", "", "replay a trace file on IPL and IPA")
	bench := flag.String("bench", "tpcb", "workload for -record: tpcb | tpcc | tatp | linkbench")
	tx := flag.Int("tx", 5000, "transactions to record")
	out := flag.String("o", "workload.trace", "output file for -record")
	schemeStr := flag.String("scheme", "2x4", "[N×M] scheme for the IPA replay, as NxM")
	op := flag.Float64("op", 0.5, "free-space fraction available to the IPA replay")
	flag.Parse()

	if err := run(*record, *replay, *bench, *tx, *out, *schemeStr, *op); err != nil {
		fmt.Fprintf(os.Stderr, "ipatrace: %v\n", err)
		os.Exit(1)
	}
}

func run(record bool, replay, bench string, tx int, out, schemeStr string, op float64) error {
	switch {
	case record:
		return doRecord(bench, tx, out)
	case replay != "":
		return doReplay(replay, schemeStr, op)
	default:
		return fmt.Errorf("need -record or -replay (see -h)")
	}
}

func doRecord(bench string, tx int, out string) error {
	fmt.Printf("recording %s, %d transactions ...\n", bench, tx)
	o, err := experiments.Execute(experiments.Spec{
		Bench: bench, Scheme: core.NewScheme(2, 4), BufferPct: 0.25, Eager: true, Tx: tx,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := o.Trace.Save(f); err != nil {
		return err
	}
	fetches, evicts := o.Trace.Counts()
	fmt.Printf("wrote %s: %d events (%d fetches, %d evictions) over %d pages\n",
		out, o.Trace.Len(), fetches, evicts, o.DBPages)
	return nil
}

func doReplay(path, schemeStr string, op float64) error {
	scheme, err := parseScheme(schemeStr)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Load(f)
	if err != nil {
		return err
	}
	distinct := map[uint64]bool{}
	for _, e := range tr.Events() {
		distinct[uint64(e.Page)] = true
	}
	fetches, evicts := tr.Counts()
	fmt.Printf("trace: %d events, %d fetches, %d evictions, %d distinct pages\n\n",
		tr.Len(), fetches, evicts, len(distinct))

	iplRes := ipl.NewSimulator(ipl.Config{}).Replay(tr)
	ipaRes := ipl.NewIPAModel(ipl.IPAConfig{Scheme: scheme, OverProvision: op}, len(distinct)).Replay(tr)

	fmt.Printf("%-22s %12s %12s\n", "metric", "IPA "+scheme.String(), "IPL")
	row := func(name string, a, b any) { fmt.Printf("%-22s %12v %12v\n", name, a, b) }
	row("write amplification", fmt.Sprintf("%.2f", ipaRes.WriteAmplific), fmt.Sprintf("%.2f", iplRes.WriteAmplific))
	row("read amplification", fmt.Sprintf("%.2f", ipaRes.ReadAmplific), fmt.Sprintf("%.2f", iplRes.ReadAmplific))
	row("erases", ipaRes.Erases, iplRes.Erases)
	row("physical reads", ipaRes.PhysReads, iplRes.PhysReads)
	row("physical writes", ipaRes.PhysWrites, iplRes.PhysWrites)
	row("reserved space", fmt.Sprintf("%.1f%%", 100*ipaRes.ReservedSpaceF), fmt.Sprintf("%.2f%%", 100*iplRes.ReservedSpaceF))
	return nil
}

func parseScheme(v string) (core.Scheme, error) {
	parts := strings.Split(strings.ToLower(v), "x")
	if len(parts) != 2 {
		return core.Scheme{}, fmt.Errorf("scheme %q: want NxM", v)
	}
	n, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return core.Scheme{}, fmt.Errorf("scheme %q: want NxM", v)
	}
	s := core.NewScheme(n, m)
	return s, s.Validate()
}
