// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so benchmark evidence can be committed in
// a stable, diffable form (see `make bench`, which writes BENCH_PR2.json).
//
// Every benchmark result line becomes one record; the value/unit pairs
// after the iteration count (ns/op, B/op, allocs/op, MB/s and any
// b.ReportMetric extras like simtx/s) land in the metrics map verbatim.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	GoVersion string   `json:"go_version"`
	GoOS      string   `json:"goos"`
	GoArch    string   `json:"goarch"`
	CPU       string   `json:"cpu,omitempty"`
	Results   []result `json:"results"`
}

func main() {
	doc := document{
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
	}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{
			Name:       fields[0],
			Package:    pkg,
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		doc.Results = append(doc.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
