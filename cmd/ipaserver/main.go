// Command ipaserver runs the IPA storage engine behind the wire
// protocol: it builds the simulated flash array, a NoFTL region with
// in-place appends enabled, opens the engine over it, optionally
// preloads the TPC-B tables, and serves TCP clients until SIGINT or
// SIGTERM triggers a graceful drain (finish accepted requests, abort
// orphaned transactions, close the database).
//
// Usage:
//
//	ipaserver                         # preload TPC-B scale 1, serve :7070
//	ipaserver -scale 4 -addr :9000    # bigger preload, custom port
//	ipaserver -scale 0 -ipa=false     # empty engine, IPA off
//
// Cluster mode starts one member of a replicated deployment; the lowest
// node id bootstraps as leader and preloads, the others join empty and
// catch up over the replication stream:
//
//	ipaserver -node-id 1 -peers 1=:7070,2=:7170,3=:7270
//	ipaserver -node-id 2 -peers 1=:7070,2=:7170,3=:7270
//	ipaserver -node-id 3 -peers 1=:7070,2=:7170,3=:7270
//
// The admin endpoint (default :7071) serves GET /stats — engine
// counters plus per-op latency histograms as JSON — and /healthz.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/repl"
	"ipa/internal/server"
	"ipa/internal/sim"
	"ipa/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "wire-protocol listen address (cluster mode listens on this node's -peers entry instead)")
	admin := flag.String("admin", "127.0.0.1:7071", "admin HTTP listen address (empty disables)")
	scale := flag.Int("scale", 1, "TPC-B branches to preload (0 skips the preload)")
	accounts := flag.Int("accounts", 2000, "TPC-B accounts per branch")
	pageSize := flag.Int("page-size", 4096, "engine page size in bytes")
	chips := flag.Int("chips", 16, "flash chips (parallel units)")
	ipa := flag.Bool("ipa", true, "enable in-place appends ([2x3] scheme) on the data region")
	inflight := flag.Int("inflight", 256, "global in-flight request cap")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	nodeID := flag.Uint64("node-id", 0, "this member's id within -peers (cluster mode)")
	peersFlag := flag.String("peers", "", `cluster membership as "1=host:port,2=host:port,..." (empty runs standalone)`)
	flag.Parse()

	var (
		db   *engine.DB
		tl   *sim.Timeline
		node *repl.Node
		err  error
	)
	listenAddr := *addr
	if *peersFlag != "" {
		peers, perr := parsePeers(*peersFlag)
		if perr != nil {
			log.Fatalf("ipaserver: -peers: %v", perr)
		}
		if _, ok := peers[*nodeID]; !ok {
			log.Fatalf("ipaserver: -node-id %d not present in -peers", *nodeID)
		}
		listenAddr = peers[*nodeID]
		// The lowest id bootstraps term 1; everyone else joins as a
		// follower and replays the leader's log (including the preload).
		bootstrap := true
		for id := range peers {
			if id < *nodeID {
				bootstrap = false
			}
		}
		db, tl, err = buildMember(*pageSize, *chips, *scale, *accounts)
		if err != nil {
			log.Fatalf("ipaserver: %v", err)
		}
		node, err = repl.NewNode(repl.Config{
			NodeID: *nodeID, Peers: peers, DB: db, TL: tl,
			Bootstrap: bootstrap, Logf: log.Printf,
		})
		if err != nil {
			log.Fatalf("ipaserver: %v", err)
		}
		if bootstrap && *scale > 0 {
			if err := preload(db, tl, *scale, *accounts); err != nil {
				log.Fatalf("ipaserver: %v", err)
			}
		}
		log.Printf("ipaserver: cluster node %d (bootstrap=%v), peers %s",
			*nodeID, bootstrap, *peersFlag)
	} else {
		db, tl, err = buildStack(*pageSize, *chips, *scale, *accounts, *ipa)
		if err != nil {
			log.Fatalf("ipaserver: %v", err)
		}
	}

	cfg := server.Config{
		DB: db, Timeline: tl, MaxInflight: *inflight, Logf: log.Printf,
	}
	if node != nil {
		cfg.Repl = node
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatalf("ipaserver: %v", err)
	}

	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		log.Fatalf("ipaserver: %v", err)
	}
	log.Printf("ipaserver: serving on %s", ln.Addr())
	if *admin != "" {
		adminLn, err := net.Listen("tcp", *admin)
		if err != nil {
			log.Fatalf("ipaserver: admin: %v", err)
		}
		log.Printf("ipaserver: admin on http://%s/stats", adminLn.Addr())
		go func() {
			if err := srv.ServeAdmin(adminLn); err != nil {
				log.Printf("ipaserver: admin: %v", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		if err != nil {
			log.Fatalf("ipaserver: serve: %v", err)
		}
	case s := <-sig:
		log.Printf("ipaserver: %v: draining (timeout %v)", s, *drain)
		if node != nil {
			node.Stop()
		}
		if err := srv.Shutdown(*drain); err != nil {
			log.Fatalf("ipaserver: shutdown: %v", err)
		}
		<-serveErr
		log.Printf("ipaserver: database closed cleanly")
	}
}

// parsePeers decodes "1=host:port,2=host:port,..." into a peer map.
func parsePeers(s string) (map[uint64]string, error) {
	peers := make(map[uint64]string)
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("entry %q is not id=addr", part)
		}
		n, err := strconv.ParseUint(id, 10, 64)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("bad node id %q", id)
		}
		if _, dup := peers[n]; dup {
			return nil, fmt.Errorf("duplicate node id %d", n)
		}
		peers[n] = addr
	}
	if len(peers) < 2 {
		return nil, fmt.Errorf("a cluster needs at least 2 members, got %d", len(peers))
	}
	return peers, nil
}

// buildMember assembles one replicated cluster member's stack (MVCC and
// replication always on; the log is unbounded so late joiners can
// stream from LSN 1).
func buildMember(pageSize, chips, scale, accountsPerBranch int) (*engine.DB, *sim.Timeline, error) {
	accounts := scale * accountsPerBranch
	dataBytes := accounts*120 + accounts*20 + 1<<20
	pages := dataBytes/pageSize + 64
	pagesPerBlock := 64
	blocksPerChip := pages*3/(chips*pagesPerBlock) + 4
	return repl.NewMemberDB(chips, blocksPerChip, pageSize, pages+64, 0, 0)
}

// preload loads the TPC-B tables on the bootstrap member.
func preload(db *engine.DB, tl *sim.Timeline, scale, accountsPerBranch int) error {
	wl := workload.NewTPCB(db, "data", scale, accountsPerBranch)
	start := time.Now()
	if err := wl.Load(tl.NewWorker()); err != nil {
		return err
	}
	log.Printf("ipaserver: preloaded TPC-B scale %d (%d accounts) in %v",
		scale, wl.Accounts(), time.Since(start).Round(time.Millisecond))
	return nil
}

// buildStack assembles flash → NoFTL region → engine, sized for the
// requested TPC-B preload, and loads the tables.
func buildStack(pageSize, chips, scale, accountsPerBranch int, ipa bool) (*engine.DB, *sim.Timeline, error) {
	accounts := scale * accountsPerBranch
	dataBytes := accounts*120 + accounts*20 + 1<<20
	pages := dataBytes/pageSize + 64
	capPages := pages * 3
	pagesPerBlock := 64
	blocksPerChip := capPages/(chips*pagesPerBlock) + 4

	g := flash.Geometry{
		Chips: chips, BlocksPerChip: blocksPerChip, PagesPerBlock: pagesPerBlock,
		PageSize: pageSize, OOBSize: pageSize / 16, Cell: flash.SLC,
	}
	tl := sim.NewTimeline(chips)
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, tl)
	if err != nil {
		return nil, nil, err
	}
	dev := noftl.Open(arr)
	scheme := core.NewScheme(2, 3)
	mode := noftl.ModeSLC
	if !ipa {
		scheme = core.Scheme{}
		mode = noftl.ModeNone
	}
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "data", Mode: mode, Scheme: scheme,
		BlocksPerChip: blocksPerChip, OverProvision: 0.10,
	}); err != nil {
		return nil, nil, err
	}
	db, err := engine.New(dev, engine.Options{
		PageSize: pageSize, BufferFrames: pages + 64, Timeline: tl,
	})
	if err != nil {
		return nil, nil, err
	}
	if scale > 0 {
		wl := workload.NewTPCB(db, "data", scale, accountsPerBranch)
		start := time.Now()
		if err := wl.Load(tl.NewWorker()); err != nil {
			return nil, nil, err
		}
		log.Printf("ipaserver: preloaded TPC-B scale %d (%d accounts) in %v",
			scale, wl.Accounts(), time.Since(start).Round(time.Millisecond))
	}
	return db, tl, nil
}
