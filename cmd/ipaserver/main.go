// Command ipaserver runs the IPA storage engine behind the wire
// protocol: it builds the simulated flash array, a NoFTL region with
// in-place appends enabled, opens the engine over it, optionally
// preloads the TPC-B tables, and serves TCP clients until SIGINT or
// SIGTERM triggers a graceful drain (finish accepted requests, abort
// orphaned transactions, close the database).
//
// Usage:
//
//	ipaserver                         # preload TPC-B scale 1, serve :7070
//	ipaserver -scale 4 -addr :9000    # bigger preload, custom port
//	ipaserver -scale 0 -ipa=false     # empty engine, IPA off
//
// The admin endpoint (default :7071) serves GET /stats — engine
// counters plus per-op latency histograms as JSON — and /healthz.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/server"
	"ipa/internal/sim"
	"ipa/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "wire-protocol listen address")
	admin := flag.String("admin", "127.0.0.1:7071", "admin HTTP listen address (empty disables)")
	scale := flag.Int("scale", 1, "TPC-B branches to preload (0 skips the preload)")
	accounts := flag.Int("accounts", 2000, "TPC-B accounts per branch")
	pageSize := flag.Int("page-size", 4096, "engine page size in bytes")
	chips := flag.Int("chips", 16, "flash chips (parallel units)")
	ipa := flag.Bool("ipa", true, "enable in-place appends ([2x3] scheme) on the data region")
	inflight := flag.Int("inflight", 256, "global in-flight request cap")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	flag.Parse()

	db, tl, err := buildStack(*pageSize, *chips, *scale, *accounts, *ipa)
	if err != nil {
		log.Fatalf("ipaserver: %v", err)
	}

	srv, err := server.New(server.Config{
		DB: db, Timeline: tl, MaxInflight: *inflight, Logf: log.Printf,
	})
	if err != nil {
		log.Fatalf("ipaserver: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("ipaserver: %v", err)
	}
	log.Printf("ipaserver: serving on %s", ln.Addr())
	if *admin != "" {
		adminLn, err := net.Listen("tcp", *admin)
		if err != nil {
			log.Fatalf("ipaserver: admin: %v", err)
		}
		log.Printf("ipaserver: admin on http://%s/stats", adminLn.Addr())
		go func() {
			if err := srv.ServeAdmin(adminLn); err != nil {
				log.Printf("ipaserver: admin: %v", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		if err != nil {
			log.Fatalf("ipaserver: serve: %v", err)
		}
	case s := <-sig:
		log.Printf("ipaserver: %v: draining (timeout %v)", s, *drain)
		if err := srv.Shutdown(*drain); err != nil {
			log.Fatalf("ipaserver: shutdown: %v", err)
		}
		<-serveErr
		log.Printf("ipaserver: database closed cleanly")
	}
}

// buildStack assembles flash → NoFTL region → engine, sized for the
// requested TPC-B preload, and loads the tables.
func buildStack(pageSize, chips, scale, accountsPerBranch int, ipa bool) (*engine.DB, *sim.Timeline, error) {
	accounts := scale * accountsPerBranch
	dataBytes := accounts*120 + accounts*20 + 1<<20
	pages := dataBytes/pageSize + 64
	capPages := pages * 3
	pagesPerBlock := 64
	blocksPerChip := capPages/(chips*pagesPerBlock) + 4

	g := flash.Geometry{
		Chips: chips, BlocksPerChip: blocksPerChip, PagesPerBlock: pagesPerBlock,
		PageSize: pageSize, OOBSize: pageSize / 16, Cell: flash.SLC,
	}
	tl := sim.NewTimeline(chips)
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, tl)
	if err != nil {
		return nil, nil, err
	}
	dev := noftl.Open(arr)
	scheme := core.NewScheme(2, 3)
	mode := noftl.ModeSLC
	if !ipa {
		scheme = core.Scheme{}
		mode = noftl.ModeNone
	}
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "data", Mode: mode, Scheme: scheme,
		BlocksPerChip: blocksPerChip, OverProvision: 0.10,
	}); err != nil {
		return nil, nil, err
	}
	db, err := engine.New(dev, engine.Options{
		PageSize: pageSize, BufferFrames: pages + 64, Timeline: tl,
	})
	if err != nil {
		return nil, nil, err
	}
	if scale > 0 {
		wl := workload.NewTPCB(db, "data", scale, accountsPerBranch)
		start := time.Now()
		if err := wl.Load(tl.NewWorker()); err != nil {
			return nil, nil, err
		}
		log.Printf("ipaserver: preloaded TPC-B scale %d (%d accounts) in %v",
			scale, wl.Accounts(), time.Since(start).Round(time.Millisecond))
	}
	return db, tl, nil
}
