package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ipa/internal/client"
	"ipa/internal/metrics"
	"ipa/internal/workload"
)

// netResult aggregates one connection's share of a network bench run.
type netResult struct {
	committed int
	aborted   int
	err       error
}

// runNet drives TPC-B over TCP against a running ipaserver: conns
// connections, each executing txPerConn Account_Update transactions
// (pipelined, two round trips each), reporting wall-clock throughput
// and client-observed latency percentiles. The pool is cluster-aware:
// pointing it at a follower of a replicated deployment follows the
// REDIRECT to the leader, and a failover mid-run retries against the
// new leader.
func runNet(addr string, conns, txPerConn int, seed int64) error {
	pool := client.NewClusterPool([]string{addr}, client.Options{})
	defer pool.Close()

	// Discover the schema → RID maps once, shared by all connections
	// (physical replication keeps RIDs identical on every member).
	drv := workload.NewClusterTPCB()
	if err := drv.Init(pool); err != nil {
		return fmt.Errorf("init via %s: %w", addr, err)
	}

	lat := make([]*metrics.Latency, conns)
	results := make([]netResult, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < conns; i++ {
		lat[i] = &metrics.Latency{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)))
			for t := 0; t < txPerConn; t++ {
				t0 := time.Now()
				_, err := drv.RunOne(pool, rng)
				lat[i].Add(time.Since(t0))
				switch {
				case err == nil:
					results[i].committed++
				case workload.Aborted(err):
					results[i].aborted++
				default:
					results[i].err = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := &metrics.Latency{}
	var committed, aborted int
	for i := range results {
		if results[i].err != nil {
			return fmt.Errorf("connection %d: %w", i, results[i].err)
		}
		committed += results[i].committed
		aborted += results[i].aborted
		total.Merge(lat[i])
	}
	fmt.Printf("# TPC-B over TCP: %s, %d connections x %d tx\n", addr, conns, txPerConn)
	fmt.Printf("%-22s %12d\n", "committed", committed)
	fmt.Printf("%-22s %12d\n", "aborted", aborted)
	fmt.Printf("%-22s %12.0f\n", "tx/s (wall clock)", float64(committed+aborted)/elapsed.Seconds())
	fmt.Printf("%-22s %12v\n", "latency p50", total.Quantile(0.50))
	fmt.Printf("%-22s %12v\n", "latency p99", total.Quantile(0.99))
	fmt.Printf("%-22s %12v\n", "latency mean", total.Mean())
	return nil
}
