// Command ipabench regenerates the paper's evaluation tables and
// figures. Each experiment builds the full stack (flash array → NoFTL →
// storage engine → workload) and prints the same rows the paper reports.
//
// Usage:
//
//	ipabench -exp table1          # one experiment
//	ipabench -exp all             # everything (slow)
//	ipabench -exp table9 -quick   # reduced scale
//	ipabench -list                # enumerate experiment ids
//
// With -net it instead acts as a TCP bench client against a running
// ipaserver, driving pipelined TPC-B transactions over the wire
// protocol:
//
//	ipabench -net 127.0.0.1:7070 -conns 16 -tx 500
package main

import (
	"flag"
	"fmt"
	"os"

	"ipa/internal/experiments"
)

var ids = []string{
	"table1", "table2", "table3", "table4", "table5", "table6",
	"table7", "table8", "table9", "table10", "table11",
	"fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "longevity",
	"schemes", "index", "htap", "repl",
}

func main() {
	exp := flag.String("exp", "", "experiment id (table1..table11, fig1, fig6..fig10, or 'all')")
	quick := flag.Bool("quick", false, "reduced scale for fast runs")
	list := flag.Bool("list", false, "list experiment ids")
	netAddr := flag.String("net", "", "bench a running ipaserver at this address instead of an experiment")
	conns := flag.Int("conns", 8, "client connections for -net")
	txPerConn := flag.Int("tx", 500, "transactions per connection for -net")
	seed := flag.Int64("seed", 42, "rng seed for -net")
	out := flag.String("out", "", "also write the experiment's JSON result to this file (schemes and index only)")
	flag.Parse()

	if *netAddr != "" {
		if err := runNet(*netAddr, *conns, *txPerConn, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "ipabench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "ipabench: -exp required (use -list for ids)")
		os.Exit(2)
	}
	p := experiments.Params{Quick: *quick}
	if *exp == "all" {
		out, err := experiments.All(p)
		fmt.Print(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipabench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *out != "" {
		var data []byte
		var table *experiments.Table
		var err error
		switch *exp {
		case "schemes":
			var rows []experiments.SchemeRow
			if rows, err = experiments.RunSchemes(p); err == nil {
				table = experiments.SchemesTable(rows)
				data, err = experiments.SchemesJSON(p, rows)
			}
		case "index":
			var rows []experiments.IndexRow
			if rows, err = experiments.RunIndexBench(p); err == nil {
				table = experiments.IndexTable(rows)
				data, err = experiments.IndexJSON(p, rows)
			}
		case "htap":
			var rows []experiments.HTAPRow
			if rows, err = experiments.RunHTAPBench(p); err == nil {
				table = experiments.HTAPTable(rows)
				data, err = experiments.HTAPJSON(p, rows)
			}
		case "repl":
			var rows []experiments.ReplRow
			var sum *experiments.ReplSummary
			if rows, sum, err = experiments.RunReplBench(p); err == nil {
				table = experiments.ReplTable(rows, sum)
				data, err = experiments.ReplJSON(p, rows, sum)
			}
		default:
			fmt.Fprintln(os.Stderr, "ipabench: -out is only supported with -exp schemes, index, htap or repl")
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipabench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ipabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(table.Render())
		fmt.Printf("wrote %s\n", *out)
		return
	}
	t, err := experiments.ByID(*exp, p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipabench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(t.Render())
}
