# Tier-1 verification gate: everything here must pass before a change
# lands. `make check` is what CI (and ROADMAP.md) means by tier-1.
GO ?= go

.PHONY: check vet build test race bench fmt

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine is fine-grained concurrent; the race detector is part of
# the gate, not an optional extra.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run xxx ./...

fmt:
	gofmt -l -w .
