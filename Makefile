# Tier-1 verification gate: everything here must pass before a change
# lands. `make check` is what CI (and ROADMAP.md) means by tier-1.
GO ?= go

.PHONY: check vet build test race bench bench-all fmt

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine is fine-grained concurrent; the race detector is part of
# the gate, not an optional extra.
race:
	$(GO) test -race ./...

# Perf trajectory: the hot-path micro-benchmarks, the 16-chip
# concurrency macro-benchmark, and the inline-vs-background GC
# interference benchmark, 5 counts each, recorded as JSON evidence.
BENCH_OUT ?= BENCH_PR3.json
bench:
	$(GO) test -run xxx -bench 'BenchmarkPageDiff$$|BenchmarkFlashProgramDelta$$' \
		-benchmem -count=5 . > /tmp/bench_raw.txt
	$(GO) test -run xxx -bench 'BenchmarkConcurrentTPCB' \
		-benchmem -count=5 ./internal/workload/ >> /tmp/bench_raw.txt
	$(GO) test -run xxx -bench 'BenchmarkGCInterference' -benchtime 1000000x \
		-count=5 ./internal/noftl/ >> /tmp/bench_raw.txt
	cat /tmp/bench_raw.txt
	$(GO) run ./cmd/benchjson < /tmp/bench_raw.txt > $(BENCH_OUT)

bench-all:
	$(GO) test -bench=. -benchmem -run xxx ./...

fmt:
	gofmt -l -w .
