# Tier-1 verification gate: everything here must pass before a change
# lands. `make check` is what CI (and ROADMAP.md) means by tier-1.
GO ?= go

.PHONY: check vet build test race bench bench-all fmt fmt-check

check: fmt-check vet build race

# gofmt cleanliness is part of the gate: a dirty tree means a tool or a
# hand-edit skipped formatting.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine is fine-grained concurrent; the race detector is part of
# the gate, not an optional extra.
race:
	$(GO) test -race ./...

# Perf trajectory: the hot-path micro-benchmarks, the buffer-pool hit
# path (sharded vs unsharded, 1→16 goroutines), the 16-chip concurrency
# macro-benchmark (sharded vs unsharded pool), and the
# inline-vs-background GC interference benchmark, 5 counts each,
# recorded as JSON evidence. The TPC-B macro-bench runs a fixed
# iteration count (-benchtime 3000x = 300k committed transactions) so
# every count measures the same steady-state regime — adaptive
# benchtime mixes short warm-cache runs with long eviction-bound ones
# and the counts stop being comparable. Its 5 counts are taken as 5
# separate -count=1 invocations rather than one -count=5 block: the
# box is a shared VM with multi-minute slow phases (CPU steal), and
# interleaving keeps each sharded-vs-unsharded pair seconds apart
# under the same machine conditions instead of minutes apart.
BENCH_OUT ?= BENCH_PR4.json
bench:
	$(GO) test -run xxx -bench 'BenchmarkPageDiff$$|BenchmarkFlashProgramDelta$$' \
		-benchmem -count=5 . > /tmp/bench_raw.txt
	$(GO) test -run xxx -bench 'BenchmarkBufferGet' \
		-benchmem -count=5 ./internal/buffer/ >> /tmp/bench_raw.txt
	for i in 1 2 3 4 5; do \
		$(GO) test -run xxx -bench 'BenchmarkConcurrentTPCB' -benchtime 3000x \
			-benchmem ./internal/workload/ >> /tmp/bench_raw.txt || exit 1; done
	$(GO) test -run xxx -bench 'BenchmarkGCInterference' -benchtime 1000000x \
		-count=5 ./internal/noftl/ >> /tmp/bench_raw.txt
	cat /tmp/bench_raw.txt
	$(GO) run ./cmd/benchjson < /tmp/bench_raw.txt > $(BENCH_OUT)

bench-all:
	$(GO) test -bench=. -benchmem -run xxx ./...

fmt:
	gofmt -l -w .
