# Tier-1 verification gate: everything here must pass before a change
# lands. `make check` is what CI (and ROADMAP.md) means by tier-1.
GO ?= go

.PHONY: check tier1 vet build test race bench bench-wal bench-htap bench-olcindex bench-index bench-schemes bench-server bench-prev bench-all fmt fmt-check

check: fmt-check vet build race

# tier1 is the replication-aware spelling of the gate: the full -race
# suite includes the 3-node kill-the-primary failover test
# (internal/repl) and the applier replay/snapshot/promote tests
# (internal/engine), so "tier1 green" means acked commits survive a
# leader crash under the race detector.
tier1: check test

# gofmt cleanliness is part of the gate: a dirty tree means a tool or a
# hand-edit skipped formatting.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine is fine-grained concurrent; the race detector is part of
# the gate, not an optional extra.
race:
	$(GO) test -race ./...

# Perf evidence for the current PR: the replicated cluster. A 3-node
# in-process cluster under 16-terminal TPC-B load over the wire
# protocol, reporting follower replication lag (records and bytes,
# sampled from the leader's per-peer shipping state), then the primary
# crash-killed mid-run: failover time until the new leader serves, the
# post-failover phase, and an audit that every acknowledged commit
# survived. Wall-clock numbers (elections run on real timers).
BENCH_OUT ?= BENCH_PR10.json
bench:
	$(GO) run ./cmd/ipabench -exp repl -out $(BENCH_OUT)

# The scalable-WAL benchmarks from the previous PR (evidence in
# BENCH_PR9.json): BenchmarkWALAppend exercises the reservation-based
# append path bare (goroutines {1,4,16} × before/after image sizes
# {16 B, 256 B}, with periodic group flushes and ring truncations;
# -benchmem proves the allocation-free hot path), and
# BenchmarkConcurrentTPCB shows the end-to-end effect on 16-worker
# committed-work ns/op. Wall-clock numbers, so the TPC-B grid runs 3
# counts.
WAL_BENCH_OUT ?= BENCH_PR9.json
bench-wal:
	rm -f /tmp/bench_wal_raw.txt
	$(GO) test -run xxx -bench 'BenchmarkWALAppend' -benchtime 200000x \
		-benchmem ./internal/wal/ >> /tmp/bench_wal_raw.txt
	for i in 1 2 3; do \
		$(GO) test -run xxx -bench 'BenchmarkConcurrentTPCB' -benchtime 3000x \
			-benchmem ./internal/workload/ >> /tmp/bench_wal_raw.txt || exit 1; done
	cat /tmp/bench_wal_raw.txt
	$(GO) run ./cmd/benchjson < /tmp/bench_wal_raw.txt > $(WAL_BENCH_OUT)
	rm -f /tmp/bench_wal_raw.txt

# The HTAP matrix from the previous PR (evidence in BENCH_PR8.json):
# TPC-B writers with a full-table balance scan mixed in, run scan-free
# (baseline), with locking reads (no-wait aborts) and with MVCC
# snapshot reads (lock-free), under uniform and Zipfian skew at 16 real
# terminals. Every completed scan verifies the TPC-B balance-sum
# invariant at its read point, so the run doubles as a consistency
# audit.
HTAP_BENCH_OUT ?= BENCH_PR8.json
bench-htap:
	$(GO) run ./cmd/ipabench -exp htap -out $(HTAP_BENCH_OUT)

# The index-latching comparison from the previous PR (evidence in
# BENCH_PR7.json): the same bare-index operation stream (point lookups
# vs scattered inserts over a warm pool) run under the coarse tree-wide
# latch and optimistic lock coupling, across 1/4/16 workers and
# read95/mixed50 mixes, recording simulated ns/op plus OLC restart and
# latch-wait counters as JSON. Fully deterministic, so one pass is the
# measurement.
OLC_BENCH_OUT ?= BENCH_PR7.json
bench-olcindex:
	$(GO) run ./cmd/ipabench -exp index -out $(OLC_BENCH_OUT)

# Wall-clock flavour of the same comparison plus the full-stack YCSB
# context runs (tables, transactions, WAL, real terminal goroutines):
# the Go benchmark harness emits sim ns/op, wallns/op, restarts/op and
# latchwaits/op per (tree, mix, workers) cell as JSON. Includes the
# snapscan-zipf mix (read80/scan20 Zipfian, scans resolved through the
# MVCC version store at a pinned snapshot LSN).
INDEX_BENCH_OUT ?= BENCH_INDEX.json
bench-index:
	rm -f /tmp/bench_index_raw.txt
	$(GO) test -run xxx -bench 'BenchmarkIndexOps' -benchtime 20000x \
		./internal/workload/ >> /tmp/bench_index_raw.txt
	$(GO) test -run xxx -bench 'BenchmarkIndexYCSB' -benchtime 2000x \
		./internal/workload/ >> /tmp/bench_index_raw.txt
	cat /tmp/bench_index_raw.txt
	$(GO) run ./cmd/benchjson < /tmp/bench_index_raw.txt > $(INDEX_BENCH_OUT)
	rm -f /tmp/bench_index_raw.txt

# The storage-scheme comparison from the previous PR (evidence in
# BENCH_PR6.json): TPC-B and TATP under oop vs ipa vs pdl.
SCHEMES_BENCH_OUT ?= BENCH_PR6.json
bench-schemes:
	$(GO) run ./cmd/ipabench -exp schemes -out $(SCHEMES_BENCH_OUT)

# The network service benchmark from the previous PR (evidence in
# BENCH_PR5.json): end-to-end TPC-B over the wire protocol across a
# connections × pipelining-depth grid, 5 counts recorded as JSON.
SERVER_BENCH_OUT ?= BENCH_PR5.json
bench-server:
	rm -f /tmp/bench_raw.txt
	for i in 1 2 3 4 5; do \
		$(GO) test -run xxx -bench 'BenchmarkServerTPCB' -benchtime 2000x \
			-benchmem ./internal/server/ >> /tmp/bench_raw.txt || exit 1; done
	cat /tmp/bench_raw.txt
	$(GO) run ./cmd/benchjson < /tmp/bench_raw.txt > $(SERVER_BENCH_OUT)
	rm -f /tmp/bench_raw.txt

bench-prev:
	$(GO) test -run xxx -bench 'BenchmarkPageDiff$$|BenchmarkFlashProgramDelta$$' \
		-benchmem -count=5 . > /tmp/bench_prev.txt
	$(GO) test -run xxx -bench 'BenchmarkBufferGet' \
		-benchmem -count=5 ./internal/buffer/ >> /tmp/bench_prev.txt
	for i in 1 2 3 4 5; do \
		$(GO) test -run xxx -bench 'BenchmarkConcurrentTPCB' -benchtime 3000x \
			-benchmem ./internal/workload/ >> /tmp/bench_prev.txt || exit 1; done
	$(GO) test -run xxx -bench 'BenchmarkGCInterference' -benchtime 1000000x \
		-count=5 ./internal/noftl/ >> /tmp/bench_prev.txt
	cat /tmp/bench_prev.txt

bench-all:
	$(GO) test -bench=. -benchmem -run xxx ./...

fmt:
	gofmt -l -w .
